(* Small-surface coverage: rendering functions, lookup errors, option
   handling — the edges that integration tests do not reach. *)

open Helpers
module Table = Pruning_util.Table
module Textio = Pruning_netlist.Textio
module Term = Pruning_mate.Term
module Cost = Pruning_mate.Cost
module Avr_isa = Pruning_cpu.Avr_isa
module Msp_isa = Pruning_cpu.Msp_isa

let test_gm_term_rendering () =
  let mux = Cell.of_kind Cell.MUX2 in
  match Gm.masking_terms mux ~faulty:[ 2 ] with
  | [ t1; t2 ] ->
    let rendered = List.sort compare [ Gm.term_to_string mux t1; Gm.term_to_string mux t2 ] in
    Alcotest.(check (list string)) "both terms" [ "(!a1 & !a2)"; "(a1 & a2)" ] rendered
  | _ -> Alcotest.fail "expected two terms"

let test_cell_pp () =
  check_string "pp" "MUX2_X1" (Format.asprintf "%a" Cell.pp (Cell.of_kind Cell.MUX2));
  List.iter
    (fun (c : Cell.t) ->
      check_bool "name ends with _X1" true
        (String.length c.Cell.name > 3
        && String.sub c.Cell.name (String.length c.Cell.name - 3) 3 = "_X1"))
    Cell.all

let test_table_custom_alignment () =
  let t = Table.create ~align:[ Table.Right; Table.Left ] [ "n"; "name" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  let lines = String.split_on_char '\n' (Table.render t) |> List.filter (( <> ) "") in
  check_string "right-aligned first column" " 1  x   " (List.nth lines 2);
  check_string "row 2" "22  yy  " (List.nth lines 3)

let test_textio_comments () =
  let text = "# a comment\nnetlist c\nwire 0 a\ninput p 0\n# trailing\n" in
  let nl = Textio.of_string ~name:"x" text in
  check_string "name from text" "c" nl.Netlist.name;
  check_int "one wire" 1 (Netlist.n_wires nl)

let test_netlist_port_lookup_errors () =
  let nl = counter_netlist () in
  Alcotest.check_raises "input port" Not_found (fun () ->
      ignore (Netlist.find_input_port nl "nope"));
  Alcotest.check_raises "output port" Not_found (fun () ->
      ignore (Netlist.find_output_port nl "nope"));
  Alcotest.check_raises "wire" Not_found (fun () -> ignore (Netlist.find_wire nl "nope"))

let test_term_to_string_names () =
  let nl = figure1_netlist () in
  let f = Netlist.find_wire nl "f" and h = Netlist.find_wire nl "h" in
  let t = Option.get (Term.of_literals [ (f, false); (h, true) ]) in
  check_string "named literals" "(!f & h)" (Term.to_string nl t);
  check_string "always true" "(true)" (Term.to_string nl Term.always_true);
  check_int "inputs" 2 (Term.n_inputs t)

let test_cost_mate_luts () =
  let t = Option.get (Term.of_literals (List.init 9 (fun i -> (i, i mod 2 = 0)))) in
  check_int "9 inputs -> 2 luts" 2 (Cost.mate_luts t);
  check_int "empty -> 0" 0 (Cost.mate_luts Term.always_true)

let test_isa_to_string_samples () =
  check_string "adiw" "ADIW r27:26, 5" (Avr_isa.to_string (Avr_isa.Adiw (26, 5)));
  check_string "swap" "SWAP r7" (Avr_isa.to_string (Avr_isa.Swap 7));
  check_string "brge label" "BRGE out" (Avr_isa.to_string (Avr_isa.Brge (Avr_isa.Label "out")));
  check_string "brlt rel" "BRLT .-3" (Avr_isa.to_string (Avr_isa.Brlt (Avr_isa.Rel (-3))));
  check_string "msp indexed" "MOV 4(R6), R5"
    (Msp_isa.to_string (Msp_isa.Mov (Msp_isa.Indexed (6, 4), Msp_isa.Dreg 5)));
  check_string "msp imm" "CMP #16, R5"
    (Msp_isa.to_string (Msp_isa.Cmp (Msp_isa.Imm 16, Msp_isa.Dreg 5)))

let test_avr_word_op_encode_errors () =
  Alcotest.check_raises "bad pair"
    (Invalid_argument "Avr_isa: ADIW: register pair r25 invalid (24/26/28/30)") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Adiw (25, 1))));
  Alcotest.check_raises "bad constant"
    (Invalid_argument "Avr_isa: SBIW: constant 64 out of range") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Sbiw (24, 64))))

let test_mux_deep_sharing () =
  (* A regression guard on hash-consing through deep mux trees: two
     identical 32-way muxes must not double the gate count. *)
  let open Signal in
  let c = create_circuit "share32" in
  let sel = input c "sel" 5 in
  let xs = List.init 32 (fun i -> const c ~width:8 ((i * 37) land 0xFF)) in
  output c "a" (mux sel xs);
  output c "b" (mux sel xs);
  let nl = Synth.to_netlist c in
  let single = Signal.create_circuit "single32" in
  let sel1 = input single "sel" 5 in
  let xs1 = List.init 32 (fun i -> const single ~width:8 ((i * 37) land 0xFF)) in
  output single "a" (mux sel1 xs1);
  let nl1 = Synth.to_netlist single in
  check_int "shared" (Netlist.n_gates nl1) (Netlist.n_gates nl)

let suite =
  [
    Alcotest.test_case "gm term rendering" `Quick test_gm_term_rendering;
    Alcotest.test_case "cell pp" `Quick test_cell_pp;
    Alcotest.test_case "table alignment" `Quick test_table_custom_alignment;
    Alcotest.test_case "textio comments" `Quick test_textio_comments;
    Alcotest.test_case "port lookup errors" `Quick test_netlist_port_lookup_errors;
    Alcotest.test_case "term rendering (netlist)" `Quick test_term_to_string_names;
    Alcotest.test_case "cost mate luts" `Quick test_cost_mate_luts;
    Alcotest.test_case "isa to_string" `Quick test_isa_to_string_samples;
    Alcotest.test_case "word op encode errors" `Quick test_avr_word_op_encode_errors;
    Alcotest.test_case "mux sharing" `Quick test_mux_deep_sharing;
  ]
