(* Microarchitectural white-box checks of the MSP430 multi-cycle FSM:
   state sequencing, memory-port activity and instruction timing. These
   pin down the properties the MATE evaluation leans on (state-gated
   masking windows). *)

open Helpers
module Msp_core = Pruning_cpu.Msp_core
module Msp_asm = Pruning_cpu.Msp_asm
module Msp_isa = Pruning_cpu.Msp_isa
module System = Pruning_cpu.System

let state_of sys =
  let nl = sys.System.netlist in
  let v = ref 0 in
  for i = 0 to 2 do
    let w = Netlist.find_wire nl (Printf.sprintf "state[%d]" i) in
    if Sim.peek sys.System.sim w then v := !v lor (1 lsl i)
  done;
  !v

let record_states items cycles =
  let program = Msp_asm.assemble items in
  let sys = System.create_msp ~program "fsm" in
  List.init cycles (fun _ ->
      Sim.eval sys.System.sim;
      let s = state_of sys in
      Sim.latch sys.System.sim;
      s)

let test_reg_reg_mov_timing () =
  (* MOV R4, R5 is register-to-register: FETCH, SRC, DST, EXEC, WB. *)
  let states =
    record_states
      [ Msp_asm.I (Msp_isa.Mov (Msp_isa.Reg 4, Msp_isa.Dreg 5)); Msp_asm.L "h";
        Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h")) ]
      5
  in
  Alcotest.(check (list int)) "five states"
    [ Msp_core.state_fetch; Msp_core.state_src; Msp_core.state_dst; Msp_core.state_exec;
      Msp_core.state_wb ]
    states

let test_jump_timing () =
  (* An unconditional jump resolves in SRC: two cycles per loop. *)
  let states = record_states [ Msp_asm.L "h"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h")) ] 6 in
  Alcotest.(check (list int)) "fetch/src loop"
    [ Msp_core.state_fetch; Msp_core.state_src; Msp_core.state_fetch; Msp_core.state_src;
      Msp_core.state_fetch; Msp_core.state_src ]
    states

let test_indexed_source_timing () =
  (* MOV 2(R6), R5: the indexed source needs an extension-word fetch and
     an operand fetch (SRC, SRC_IDX). *)
  let states =
    record_states
      [ Msp_asm.I (Msp_isa.Mov (Msp_isa.Indexed (6, 2), Msp_isa.Dreg 5)); Msp_asm.L "h";
        Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h")) ]
      6
  in
  Alcotest.(check (list int)) "six states"
    [ Msp_core.state_fetch; Msp_core.state_src; Msp_core.state_src_idx; Msp_core.state_dst;
      Msp_core.state_exec; Msp_core.state_wb ]
    states

let test_memory_writes_only_in_wb () =
  (* mem_wen may rise only in the WB state. *)
  let program =
    Msp_asm.assemble
      [
        Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 0x400, Msp_isa.Dreg 6));
        Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 123, Msp_isa.Dindexed (6, 0)));
        Msp_asm.L "h"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h"));
      ]
  in
  let sys = System.create_msp ~program "wb" in
  let wrote = ref 0 in
  for _ = 1 to 30 do
    Sim.eval sys.System.sim;
    if Sim.get_port sys.System.sim "mem_wen" = 1 then begin
      incr wrote;
      check_int "write only in WB" Msp_core.state_wb (state_of sys)
    end;
    Sim.latch sys.System.sim
  done;
  check_int "exactly one store" 1 !wrote;
  check_int "value landed" 123 sys.System.ram.(0x400 / 2)

let test_conditional_jump_not_taken_timing () =
  (* CMP then JNZ not taken: the jump still costs FETCH+SRC and falls
     through. *)
  let program =
    Msp_asm.assemble
      [
        Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 5, Msp_isa.Dreg 4));
        Msp_asm.I (Msp_isa.Cmp (Msp_isa.Imm 5, Msp_isa.Dreg 4));
        Msp_asm.I (Msp_isa.Jnz (Msp_isa.Rel 10));
        Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 1, Msp_isa.Dreg 5));
        Msp_asm.L "h"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h"));
      ]
  in
  let sys = System.create_msp ~program "nt" in
  System.run sys ~cycles:40;
  Sim.eval sys.System.sim;
  let nl = sys.System.netlist in
  let v = ref 0 in
  for i = 0 to 15 do
    if Sim.peek sys.System.sim (Netlist.find_wire nl (Printf.sprintf "rf_5[%d]" i)) then
      v := !v lor (1 lsl i)
  done;
  check_int "fallthrough executed" 1 !v

let suite =
  [
    Alcotest.test_case "reg-reg mov timing" `Quick test_reg_reg_mov_timing;
    Alcotest.test_case "jump timing" `Quick test_jump_timing;
    Alcotest.test_case "indexed source timing" `Quick test_indexed_source_timing;
    Alcotest.test_case "memory writes only in WB" `Quick test_memory_writes_only_in_wb;
    Alcotest.test_case "not-taken jump" `Quick test_conditional_jump_not_taken_timing;
  ]
