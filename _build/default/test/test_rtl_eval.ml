(* Cross-validation of the technology mapper: the direct RTL evaluator
   (Eval) and the synthesized netlist in the gate-level simulator must
   agree cycle by cycle — on combinational expressions, on registered
   designs, and on the full CPU cores replaying recorded stimuli. *)

open Helpers
module Eval = Pruning_rtl.Eval
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs

let test_eval_counter () =
  let open Signal in
  let c = create_circuit "counter4" in
  let enable = input c "enable" 1 in
  let r = reg c "count" 4 in
  connect r (mux2 enable (q r +: const c ~width:4 1) (q r));
  output c "count_o" (q r);
  output c "wrap" (eq_const (q r) 15 &: enable);
  let ev = Eval.create c in
  Eval.set_input ev "enable" 1;
  for i = 0 to 20 do
    check_int (Printf.sprintf "count at %d" i) (i land 15) (Eval.output ev "count_o");
    check_int "wrap" (if i land 15 = 15 then 1 else 0) (Eval.output ev "wrap");
    Eval.step ev
  done;
  Eval.set_input ev "enable" 0;
  let held = Eval.output ev "count_o" in
  Eval.step ev;
  Eval.step ev;
  check_int "held" held (Eval.output ev "count_o");
  check_int "cycle counter" 23 (Eval.cycle ev)

let test_eval_vs_sim_random_exprs () =
  let rng = Prng.create 4141 in
  for _ = 1 to 25 do
    let open Signal in
    let c = create_circuit "expr" in
    let x = input c "x" 8 in
    let y = input c "y" 8 in
    (* A handful of mixed expressions. *)
    output c "sum" (x +: y);
    output c "diff" (x -: y);
    output c "logic" (x &: ~:y |: (x ^: y));
    output c "cmp" (uresize (x <: y) 8);
    output c "sel" (mux2 (bit x 0) y x);
    let nl = Synth.to_netlist c in
    let sim = Sim.create nl in
    let ev = Eval.create c in
    for _ = 1 to 15 do
      let xv = Prng.int rng 256 and yv = Prng.int rng 256 in
      Sim.set_port sim "x" xv;
      Sim.set_port sim "y" yv;
      Eval.set_input ev "x" xv;
      Eval.set_input ev "y" yv;
      Sim.eval sim;
      List.iter
        (fun port ->
          check_int port (Eval.output ev port) (Sim.get_port sim port))
        [ "sum"; "diff"; "logic"; "cmp"; "sel" ]
    done
  done

let test_eval_vs_sim_avr_core () =
  (* Replay the netlist simulation's input-port values into the RTL
     evaluator and compare every output port and every register, every
     cycle — end-to-end validation of Synth on the real core. *)
  let circuit = Pruning_cpu.Avr_core.circuit () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let sys = System.create_avr ~program "fib" in
  let nl = sys.System.netlist in
  let cycles = 120 in
  let trace = System.record sys ~cycles in
  let ev = Eval.create circuit in
  let in_ports = List.map (fun (p : Netlist.port) -> p) nl.Netlist.inputs in
  let out_ports = List.map (fun (p : Netlist.port) -> p.Netlist.port_name) nl.Netlist.outputs in
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun (p : Netlist.port) ->
        let v = ref 0 in
        Array.iteri
          (fun i w -> if Trace.get trace ~cycle w then v := !v lor (1 lsl i))
          p.Netlist.port_wires;
        Eval.set_input ev p.Netlist.port_name !v)
      in_ports;
    List.iter
      (fun name ->
        let expected = ref 0 in
        let port = Netlist.find_output_port nl name in
        Array.iteri
          (fun i w -> if Trace.get trace ~cycle w then expected := !expected lor (1 lsl i))
          port.Netlist.port_wires;
        check_int (Printf.sprintf "%s at %d" name cycle) !expected (Eval.output ev name))
      out_ports;
    (* Spot-check registers against the traced flop wires. *)
    List.iter
      (fun reg_name ->
        let width =
          List.length (Netlist.flops_matching nl ~prefix:(reg_name ^ "["))
        in
        let expected = ref 0 in
        for i = 0 to width - 1 do
          if Trace.get trace ~cycle (Netlist.find_wire nl (Printf.sprintf "%s[%d]" reg_name i))
          then expected := !expected lor (1 lsl i)
        done;
        check_int (Printf.sprintf "%s at %d" reg_name cycle) !expected (Eval.reg_value ev reg_name))
      [ "pc"; "ir"; "sreg"; "rf_16"; "rf_17"; "portb" ];
    Eval.step ev
  done

let test_eval_vs_sim_msp_core () =
  let circuit = Pruning_cpu.Msp_core.circuit () in
  let program = Msp_asm.assemble Programs.msp_fib in
  let sys = System.create_msp ~program "fib" in
  let nl = sys.System.netlist in
  let cycles = 150 in
  let trace = System.record sys ~cycles in
  let ev = Eval.create circuit in
  for cycle = 0 to cycles - 1 do
    let rdata = ref 0 in
    let port = Netlist.find_input_port nl "mem_rdata" in
    Array.iteri
      (fun i w -> if Trace.get trace ~cycle w then rdata := !rdata lor (1 lsl i))
      port.Netlist.port_wires;
    Eval.set_input ev "mem_rdata" !rdata;
    List.iter
      (fun name ->
        let expected = ref 0 in
        let port = Netlist.find_output_port nl name in
        Array.iteri
          (fun i w -> if Trace.get trace ~cycle w then expected := !expected lor (1 lsl i))
          port.Netlist.port_wires;
        check_int (Printf.sprintf "%s at %d" name cycle) !expected (Eval.output ev name))
      [ "mem_addr"; "mem_wen"; "mem_wdata" ];
    Eval.step ev
  done

let test_eval_errors () =
  let open Signal in
  let c = create_circuit "err" in
  let r = reg c "r" 2 in
  output c "o" (q r);
  Alcotest.check_raises "unconnected" (Invalid_argument "Eval: register r never connected")
    (fun () -> ignore (Eval.create c));
  connect r (q r);
  let ev = Eval.create c in
  Alcotest.check_raises "unknown port" Not_found (fun () -> Eval.set_input ev "nope" 0);
  Alcotest.check_raises "unknown output" Not_found (fun () -> ignore (Eval.output ev "nope"));
  Alcotest.check_raises "unknown reg" Not_found (fun () -> ignore (Eval.reg_value ev "nope"))

let suite =
  [
    Alcotest.test_case "eval counter" `Quick test_eval_counter;
    Alcotest.test_case "eval vs sim: random exprs" `Quick test_eval_vs_sim_random_exprs;
    Alcotest.test_case "eval vs sim: AVR core" `Quick test_eval_vs_sim_avr_core;
    Alcotest.test_case "eval vs sim: MSP430 core" `Quick test_eval_vs_sim_msp_core;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
  ]
