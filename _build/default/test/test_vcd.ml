open Helpers
module Vcd = Pruning_vcd.Vcd

let record_counter_trace cycles =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.run sim ~trace ~cycles ();
  (nl, trace)

let test_roundtrip () =
  let nl, trace = record_counter_trace 12 in
  let text = Vcd.to_string nl trace in
  let parsed = Vcd.parse text in
  check_int "wire count" (Netlist.n_wires nl) (Array.length parsed.Vcd.wire_names);
  let back = Vcd.reorder parsed nl in
  check_int "cycles" (Trace.n_cycles trace) (Trace.n_cycles back);
  for cycle = 0 to Trace.n_cycles trace - 1 do
    for w = 0 to Netlist.n_wires nl - 1 do
      check_bool
        (Printf.sprintf "wire %d cycle %d" w cycle)
        (Trace.get trace ~cycle w)
        (Trace.get back ~cycle w)
    done
  done

let test_file_roundtrip () =
  let nl, trace = record_counter_trace 5 in
  let path = Filename.temp_file "pruning" ".vcd" in
  Vcd.write_file nl trace path;
  let parsed = Vcd.parse_file path in
  Sys.remove path;
  let back = Vcd.reorder parsed nl in
  check_int "cycles" 5 (Trace.n_cycles back)

let test_header_contents () =
  let nl, trace = record_counter_trace 1 in
  let text = Vcd.to_string nl trace in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "has timescale" true (contains "$timescale" text);
  check_bool "has module scope" true (contains "$scope module counter4" text);
  check_bool "has enddefinitions" true (contains "$enddefinitions" text);
  check_bool "declares count[0]" true (contains "count[0]" text)

let test_parse_errors () =
  Alcotest.check_raises "no vars" (Failure "Vcd.parse: no variables declared") (fun () ->
      ignore (Vcd.parse "$enddefinitions $end\n#0\n"));
  let bad =
    "$var wire 1 ! x $end\n$enddefinitions $end\n#0\nz!\n"
  in
  Alcotest.check_raises "bad value" (Failure "Vcd.parse: line 4: unsupported: z!") (fun () ->
      ignore (Vcd.parse bad))

let test_reorder_missing_wire () =
  let nl, _trace = record_counter_trace 2 in
  let other = "$var wire 1 ! bogus $end\n$enddefinitions $end\n#0\n1!\n#1\n" in
  let parsed = Vcd.parse other in
  Alcotest.check_raises "missing wire" (Failure "Vcd.reorder: wire enable[0] not in dump")
    (fun () -> ignore (Vcd.reorder parsed nl))

let test_identifier_uniqueness () =
  (* More wires than single-character ids to exercise multi-char codes. *)
  let open Signal in
  let c = create_circuit "wide" in
  let x = input c "x" 32 in
  let acc = ref (select x ~hi:0 ~lo:0) in
  for i = 1 to 31 do
    acc := ( ^: ) !acc (select x ~hi:i ~lo:i)
  done;
  (* Build some depth so we get > 94 wires in total. *)
  let y = input c "y" 32 in
  output c "p" !acc;
  output c "s" (x +: y);
  let nl = Synth.to_netlist c in
  check_bool "enough wires" true (Netlist.n_wires nl > 94);
  let sim = Sim.create nl in
  Sim.set_port sim "x" 12345;
  Sim.set_port sim "y" 54321;
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.run sim ~trace ~cycles:2 ();
  let parsed = Vcd.parse (Vcd.to_string nl trace) in
  let back = Vcd.reorder parsed nl in
  for w = 0 to Netlist.n_wires nl - 1 do
    check_bool "value survives" (Trace.get trace ~cycle:1 w) (Trace.get back ~cycle:1 w)
  done

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "header contents" `Quick test_header_contents;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "reorder missing wire" `Quick test_reorder_missing_wire;
    Alcotest.test_case "multi-character identifiers" `Quick test_identifier_uniqueness;
  ]
