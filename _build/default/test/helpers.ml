(* Shared helpers for the test suites. *)

module Cell = Pruning_cell.Cell
module Gm = Pruning_cell.Gm
module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone
module Signal = Pruning_rtl.Signal
module Synth = Pruning_rtl.Synth
module Sim = Pruning_sim.Sim
module Trace = Pruning_sim.Trace
module Prng = Pruning_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The paper's Figure 1a circuit: gates A..E over wires a..l.
     A = NAND2(a, b) -> f      B = XOR2(c, d) -> g     C = INV(e) -> h
     D = AND2(g, f)  -> k      E = OR2(g, h)  -> l
   Outputs: k, l and h (h must be externally observable for the paper's
   "no MATE for e" claim: the path e -> C ends at an output with no
   masking-capable gate on it).
   The MATE facts from the paper hold on this circuit:
     - cone(d) = {d, g, k, l} with gates {B, D, E}, border {c, f, h};
     - M_d = (!f & h), equivalently (a & b & !e) on the far side of A/C;
     - e has no MATE. *)
let figure1_netlist () =
  let b = Netlist.Builder.create "figure1" in
  let wire = Netlist.Builder.add_wire b in
  let a = wire "a"
  and wb = wire "b"
  and c = wire "c"
  and d = wire "d"
  and e = wire "e" in
  let f = wire "f" and g = wire "g" and h = wire "h" in
  let k = wire "k" and l = wire "l" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.NAND2) [| a; wb |] f;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.XOR2) [| c; d |] g;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| e |] h;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| g; f |] k;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.OR2) [| g; h |] l;
  Netlist.Builder.add_input_port b "a" [| a |];
  Netlist.Builder.add_input_port b "b" [| wb |];
  Netlist.Builder.add_input_port b "c" [| c |];
  Netlist.Builder.add_input_port b "d" [| d |];
  Netlist.Builder.add_input_port b "e" [| e |];
  Netlist.Builder.add_output_port b "k" [| k |];
  Netlist.Builder.add_output_port b "l" [| l |];
  Netlist.Builder.add_output_port b "h" [| h |];
  Netlist.Builder.finalize b

(* The same circuit with the five free wires a..e as flip-flops fed by
   primary inputs: the sequential version behind the paper's Figure 1b
   fault-space picture (5 flops x 8 cycles). *)
let figure1_seq_netlist () =
  let b = Netlist.Builder.create "figure1seq" in
  let wire = Netlist.Builder.add_wire b in
  let mk_state name =
    let d_in = wire (name ^ "_in") in
    let q = wire name in
    Netlist.Builder.add_flop b name ~d:d_in ~q;
    Netlist.Builder.add_input_port b (name ^ "_in") [| d_in |];
    q
  in
  let a = mk_state "a" in
  let wb = mk_state "b" in
  let c = mk_state "c" in
  let d = mk_state "d" in
  let e = mk_state "e" in
  let f = wire "f" and g = wire "g" and h = wire "h" in
  let k = wire "k" and l = wire "l" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.NAND2) [| a; wb |] f;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.XOR2) [| c; d |] g;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| e |] h;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| g; f |] k;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.OR2) [| g; h |] l;
  Netlist.Builder.add_output_port b "k" [| k |];
  Netlist.Builder.add_output_port b "l" [| l |];
  Netlist.Builder.add_output_port b "h" [| h |];
  Netlist.Builder.finalize b

(* A small synchronous example: 4-bit counter with enable and wrap output. *)
let counter_netlist () =
  let open Signal in
  let c = create_circuit "counter4" in
  let enable = input c "enable" 1 in
  let r = reg c "count" 4 in
  let next = q r +: const c ~width:4 1 in
  connect r (mux2 enable next (q r));
  output c "count_o" (q r);
  output c "wrap" (eq_const (q r) 15 &: enable);
  Synth.to_netlist c
