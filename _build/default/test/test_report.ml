open Helpers
module Experiments = Pruning_report.Experiments
module Figure1 = Pruning_report.Figure1
module Search = Pruning_mate.Search
module Table = Pruning_util.Table

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Tiny-scale preparation shared by the table tests. *)
let tiny_params =
  { Search.default_params with Search.max_candidates = 150; max_situations = 3 }

let prepared_avr =
  lazy (Experiments.prepare ~params:tiny_params ~cycles:250 (Experiments.avr_setup ()))

let prepared_msp =
  lazy (Experiments.prepare ~params:tiny_params ~cycles:250 (Experiments.msp_setup ()))

let test_figure1a_contents () =
  let text = Figure1.render_figure1a () in
  check_bool "cone wires" true (contains "fault cone of d: {d, g, k, l}" text);
  check_bool "border" true (contains "border wires: {c, f, h}" text);
  check_bool "paper MATE for d" true (contains "MATE(d) = (!f & h)" text);
  check_bool "e unmaskable" true (contains "e: unmaskable" text)

let test_figure1b_contents () =
  let text = Figure1.render_figure1b () in
  check_bool "matrix header" true (contains "5 flops x 8 cycles" text);
  check_bool "e row never pruned" true (contains "e          ########" text);
  check_bool "some pruning happened" true (contains "pruned" text);
  check_bool "a pruned somewhere" true (contains "a          " text)

let test_table1_shape () =
  let p = Lazy.force prepared_avr in
  let rendered = Table.render (Experiments.table1 [ p ]) in
  check_bool "has FF column" true (contains "AVR FF" rendered);
  check_bool "has w/o RF column" true (contains "AVR FF w/o RF" rendered);
  List.iter
    (fun row -> check_bool row true (contains row rendered))
    [ "Faulty wires"; "Avg. cone"; "Med. cone"; "Run time"; "#Unmaskable"; "#MATE" ];
  (* 306 flops, 50 outside the register file *)
  check_bool "306 wires" true (contains "306" rendered);
  check_bool "50 wires w/o RF" true (contains "50" rendered)

let test_table23_shape () =
  let p = Lazy.force prepared_avr in
  let rendered = Table.render (Experiments.table23 p) in
  List.iter
    (fun s -> check_bool s true (contains s rendered))
    [
      "fib FF"; "fib FF w/o RF"; "conv FF"; "#Effective MATEs"; "Avg. #inputs";
      "Masked faults"; "Top 10 (sel. fib)"; "Top 200 (sel. conv)";
    ]

let test_reduction_shape_claims () =
  (* The headline qualitative claims on the AVR at tiny scale: excluding
     the register file raises the masked share. *)
  let p = Lazy.force prepared_avr in
  List.iter
    (fun (r : Experiments.reduction_summary) ->
      check_bool
        (Printf.sprintf "w/o RF >= FF for %s" r.Experiments.program)
        true
        (r.Experiments.norf_percent >= r.Experiments.ff_percent -. 1e-9))
    (Experiments.reductions p)

let test_top_n_monotone () =
  let p = Lazy.force prepared_avr in
  let r n = Experiments.top_n_reduction p ~select_on:"fib" ~evaluate_on:"fib" ~rf:false ~n in
  check_bool "10 <= 50" true (r 10 <= r 50 +. 1e-9);
  check_bool "50 <= 200" true (r 50 <= r 200 +. 1e-9)

let test_msp_prepared () =
  let p = Lazy.force prepared_msp in
  let rendered = Table.render (Experiments.table23 p) in
  check_bool "MSP table renders" true (String.length rendered > 100);
  let reductions = Experiments.reductions p in
  check_int "two programs" 2 (List.length reductions);
  List.iter
    (fun (r : Experiments.reduction_summary) ->
      check_bool "percentages sane" true
        (r.Experiments.ff_percent >= 0. && r.Experiments.norf_percent <= 100.))
    reductions

let test_cost_table () =
  let p = Lazy.force prepared_avr in
  let rendered = Table.render (Experiments.mate_cost_table p) in
  check_bool "has complete row" true (contains "complete (FF)" rendered);
  check_bool "has top 50 row" true (contains "top 50" rendered)

let suite =
  [
    Alcotest.test_case "figure 1a contents" `Quick test_figure1a_contents;
    Alcotest.test_case "figure 1b contents" `Quick test_figure1b_contents;
    Alcotest.test_case "table 1 shape" `Slow test_table1_shape;
    Alcotest.test_case "table 2/3 shape" `Slow test_table23_shape;
    Alcotest.test_case "w/o RF >= FF" `Slow test_reduction_shape_claims;
    Alcotest.test_case "top-n monotone" `Slow test_top_n_monotone;
    Alcotest.test_case "msp430 prepared" `Slow test_msp_prepared;
    Alcotest.test_case "cost table" `Slow test_cost_table;
  ]
