open Helpers

let test_eval_figure1 () =
  let nl = figure1_netlist () in
  let sim = Sim.create nl in
  (* k = (c xor d) and !(a and b); l = (c xor d) or (not e); h = not e *)
  let set name v = Sim.set_port sim name v in
  set "a" 0;
  set "b" 1;
  set "c" 1;
  set "d" 0;
  set "e" 1;
  Sim.eval sim;
  check_int "k" 1 (Sim.get_port sim "k");
  check_int "l" 1 (Sim.get_port sim "l");
  check_int "h" 0 (Sim.get_port sim "h");
  set "a" 1;
  set "e" 0;
  Sim.eval sim;
  check_int "k" 0 (Sim.get_port sim "k");
  check_int "l" 1 (Sim.get_port sim "l");
  check_int "h" 1 (Sim.get_port sim "h")

let test_set_input_validation () =
  let nl = figure1_netlist () in
  let sim = Sim.create nl in
  let k = Netlist.find_wire nl "k" in
  Alcotest.check_raises "not an input" (Invalid_argument "Sim.set_input: k is not a primary input")
    (fun () -> Sim.set_input sim k true)

let test_trace_recording () =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~trace ~cycles:10 ();
  check_int "cycles recorded" 10 (Trace.n_cycles trace);
  (* count[0] toggles every cycle while enabled. *)
  let bit0 = Netlist.find_wire nl "count[0]" in
  for cycle = 0 to 9 do
    check_bool
      (Printf.sprintf "count[0] at %d" cycle)
      (cycle land 1 = 1)
      (Trace.get trace ~cycle bit0)
  done;
  (* changed detects toggles. *)
  check_bool "changed at 0" true (Trace.changed trace ~cycle:0 bit0);
  check_bool "changed at 5" true (Trace.changed trace ~cycle:5 bit0);
  let bit3 = Netlist.find_wire nl "count[3]" in
  check_bool "bit3 stable at 5" false (Trace.changed trace ~cycle:5 bit3)

let test_flop_injection () =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~cycles:3 ();
  Sim.eval sim;
  check_int "count is 3" 3 (Sim.get_port sim "count_o");
  (* Flip bit 2 of the counter: 3 -> 7. *)
  let f = Netlist.find_flop nl "count[2]" in
  Sim.set_flop sim f.Netlist.flop_id (not (Sim.get_flop sim f.Netlist.flop_id));
  Sim.eval sim;
  check_int "after SEU" 7 (Sim.get_port sim "count_o")

let test_save_restore () =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  Sim.run sim ~cycles:5 ();
  Sim.eval sim;
  let restore = Sim.save_state sim in
  let before = Sim.get_port sim "count_o" in
  Sim.run sim ~cycles:7 ();
  Sim.eval sim;
  check_bool "state advanced" true (Sim.get_port sim "count_o" <> before);
  restore ();
  Sim.eval sim;
  check_int "restored" before (Sim.get_port sim "count_o");
  check_int "cycle restored" 5 (Sim.cycle sim)

let test_device_rom () =
  (* A circuit that asks a device for data: addr register feeds a "ROM"
     device that answers combinationally. *)
  let open Signal in
  let c = create_circuit "romtest" in
  let data = input c "data" 8 in
  let addr = reg c "addr" 4 in
  connect addr (q addr +: const c ~width:4 1);
  output c "addr_o" (q addr);
  output c "data_o" data;
  let nl = Synth.to_netlist c in
  let sim = Sim.create nl in
  let addr_port = Netlist.find_output_port nl "addr_o" in
  let data_port = Netlist.find_input_port nl "data" in
  let rom_value a = (a * 3 + 1) land 0xFF in
  let device =
    Sim.pure_device "rom" (fun read write ->
        let a = ref 0 in
        Array.iteri
          (fun i w -> if read w then a := !a lor (1 lsl i))
          addr_port.Netlist.port_wires;
        let v = rom_value !a in
        Array.iteri
          (fun i w -> write w (v land (1 lsl i) <> 0))
          data_port.Netlist.port_wires)
  in
  Sim.add_device sim device;
  for i = 0 to 9 do
    Sim.eval sim;
    check_int (Printf.sprintf "addr %d" i) (i land 15) (Sim.get_port sim "addr_o");
    check_int (Printf.sprintf "data %d" i) (rom_value (i land 15)) (Sim.get_port sim "data_o");
    Sim.latch sim
  done

let test_device_state_save () =
  (* A device with internal state: an accumulator that sums the port value
     every clock, exercised by save/restore. *)
  let open Signal in
  let c = create_circuit "acc" in
  let r = reg c "r" 4 in
  connect r (q r +: const c ~width:4 1);
  output c "v" (q r);
  let nl = Synth.to_netlist c in
  let sim = Sim.create nl in
  let total = ref 0 in
  let port = Netlist.find_output_port nl "v" in
  let device =
    {
      Sim.dev_name = "accumulator";
      dev_comb = (fun _ _ -> ());
      dev_clock =
        (fun read ->
          let v = ref 0 in
          Array.iteri (fun i w -> if read w then v := !v lor (1 lsl i)) port.Netlist.port_wires;
          total := !total + !v);
      dev_save =
        (fun () ->
          let saved = !total in
          fun () -> total := saved);
    }
  in
  Sim.add_device sim device;
  Sim.run sim ~cycles:4 ();
  (* 0+1+2+3 *)
  check_int "sum after 4" 6 !total;
  let restore = Sim.save_state sim in
  Sim.run sim ~cycles:2 ();
  check_int "sum after 6" 15 !total;
  restore ();
  check_int "sum restored" 6 !total;
  Sim.run sim ~cycles:2 ();
  check_int "sum replayed" 15 !total

let test_counter_netlist_trace_vs_sim () =
  (* The trace row equals simulator wire values at each recorded cycle. *)
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.run sim ~trace ~cycles:6 ();
  let sim2 = Sim.create nl in
  Sim.set_port sim2 "enable" 1;
  for cycle = 0 to 5 do
    Sim.eval sim2;
    let row = Trace.row trace ~cycle in
    Array.iteri
      (fun w expected ->
        check_bool
          (Printf.sprintf "wire %s cycle %d" (Netlist.wire_name nl w) cycle)
          expected (Sim.peek sim2 w))
      row;
    Sim.latch sim2
  done

let suite =
  [
    Alcotest.test_case "combinational eval" `Quick test_eval_figure1;
    Alcotest.test_case "set_input validation" `Quick test_set_input_validation;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "flop SEU injection" `Quick test_flop_injection;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "combinational ROM device" `Quick test_device_rom;
    Alcotest.test_case "device state in snapshots" `Quick test_device_state_save;
    Alcotest.test_case "trace matches live simulation" `Quick test_counter_netlist_trace_vs_sim;
  ]
