open Helpers
module Avr_isa = Pruning_cpu.Avr_isa
module Avr_asm = Pruning_cpu.Avr_asm
module Avr_ref = Pruning_cpu.Avr_ref
module Msp_isa = Pruning_cpu.Msp_isa
module Msp_asm = Pruning_cpu.Msp_asm
module Msp_ref = Pruning_cpu.Msp_ref
module Programs = Pruning_cpu.Programs
module System = Pruning_cpu.System

(* Read a multi-bit register from the simulator by flop naming convention. *)
let vec sim nl name width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    let w = Netlist.find_wire nl (Printf.sprintf "%s[%d]" name i) in
    if Sim.peek sim w then v := !v lor (1 lsl i)
  done;
  !v

(* ------------------------------------------------------------------ *)
(* ISA encode/decode                                                    *)

let avr_random_instr rng : Avr_isa.t =
  let r () = Prng.int rng 32 in
  let h () = 16 + Prng.int rng 16 in
  let k () = Prng.int rng 256 in
  let io () = List.nth [ 0x16; 0x18; 0x01; 0x3F ] (Prng.int rng 4) (* not 0x32: TCNT is cycle-dependent *) in
  let t () = Avr_isa.Rel (Prng.int rng 128 - 64) in
  match Prng.int rng 42 with
  | 0 -> Avr_isa.Nop
  | 1 -> Avr_isa.Mov (r (), r ())
  | 2 -> Avr_isa.Add (r (), r ())
  | 3 -> Avr_isa.Adc (r (), r ())
  | 4 -> Avr_isa.Sub (r (), r ())
  | 5 -> Avr_isa.Sbc (r (), r ())
  | 6 -> Avr_isa.And_ (r (), r ())
  | 7 -> Avr_isa.Or_ (r (), r ())
  | 8 -> Avr_isa.Eor (r (), r ())
  | 9 -> Avr_isa.Cp (r (), r ())
  | 10 -> Avr_isa.Cpc (r (), r ())
  | 11 -> Avr_isa.Ldi (h (), k ())
  | 12 -> Avr_isa.Subi (h (), k ())
  | 13 -> Avr_isa.Sbci (h (), k ())
  | 14 -> Avr_isa.Andi (h (), k ())
  | 15 -> Avr_isa.Ori (h (), k ())
  | 16 -> Avr_isa.Cpi (h (), k ())
  | 17 -> Avr_isa.Com (r ())
  | 18 -> Avr_isa.Neg (r ())
  | 19 -> Avr_isa.Inc (r ())
  | 20 -> Avr_isa.Dec (r ())
  | 21 -> Avr_isa.Lsr (r ())
  | 22 -> Avr_isa.Ror (r ())
  | 23 -> Avr_isa.Asr (r ())
  | 24 -> Avr_isa.Ld_x (r ())
  | 25 ->
    let d = r () in
    Avr_isa.Ld_x_inc (if d = 26 then 25 else d)
  | 26 -> Avr_isa.St_x (r ())
  | 27 -> Avr_isa.St_x_inc (r ())
  | 28 -> Avr_isa.In_ (r (), io ())
  | 29 -> Avr_isa.Out (io (), r ())
  | 30 -> Avr_isa.Rjmp (Avr_isa.Rel (Prng.int rng 4096 - 2048))
  | 31 -> Avr_isa.Breq (t ())
  | 32 -> Avr_isa.Brne (t ())
  | 33 -> Avr_isa.Swap (r ())
  | 34 -> Avr_isa.Adiw (24 + (2 * Prng.int rng 4), Prng.int rng 64)
  | 35 -> Avr_isa.Sbiw (24 + (2 * Prng.int rng 4), Prng.int rng 64)
  | 36 -> Avr_isa.Brmi (t ())
  | 37 -> Avr_isa.Brpl (t ())
  | 38 -> Avr_isa.Brvs (t ())
  | 39 -> Avr_isa.Brvc (t ())
  | 40 -> Avr_isa.Brlt (t ())
  | _ -> Avr_isa.Brge (t ())

let test_avr_encode_decode_roundtrip () =
  let rng = Prng.create 123 in
  for _ = 1 to 2000 do
    let insn = avr_random_instr rng in
    let word = Avr_isa.encode insn in
    check_bool "16-bit word" true (word >= 0 && word <= 0xFFFF);
    match Avr_isa.decode word with
    | None -> Alcotest.failf "decode failed for %s (0x%04X)" (Avr_isa.to_string insn) word
    | Some insn' ->
      if insn <> insn' then
        Alcotest.failf "roundtrip: %s -> 0x%04X -> %s" (Avr_isa.to_string insn) word
          (Avr_isa.to_string insn')
  done

let test_avr_encode_errors () =
  Alcotest.check_raises "ldi low register"
    (Invalid_argument "Avr_isa: LDI: register r3 not in r16..r31") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Ldi (3, 1))));
  Alcotest.check_raises "branch range"
    (Invalid_argument "Avr_isa: BRNE: offset 100 out of range") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Brne (Avr_isa.Rel 100))));
  Alcotest.check_raises "unresolved label"
    (Invalid_argument "Avr_isa: RJMP: unresolved label foo") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Rjmp (Avr_isa.Label "foo"))));
  Alcotest.check_raises "ld x+ r26"
    (Invalid_argument "Avr_isa: LD X+: LD r26, X+ would double-write r26") (fun () ->
      ignore (Avr_isa.encode (Avr_isa.Ld_x_inc 26)))

let msp_random_src rng : Msp_isa.src =
  match Prng.int rng 5 with
  | 0 -> Msp_isa.Reg (4 + Prng.int rng 12)
  | 1 -> Msp_isa.Indexed (4 + Prng.int rng 12, Prng.int rng 0x10000)
  | 2 -> Msp_isa.Indirect (4 + Prng.int rng 12)
  | 3 -> Msp_isa.Indirect_inc (4 + Prng.int rng 12)
  | _ -> Msp_isa.Imm (Prng.int rng 0x10000)

let msp_random_dst rng : Msp_isa.dst =
  if Prng.bool rng then Msp_isa.Dreg (4 + Prng.int rng 12)
  else Msp_isa.Dindexed (4 + Prng.int rng 12, Prng.int rng 0x10000)

let msp_random_instr rng : Msp_isa.t =
  let s () = msp_random_src rng in
  let d () = msp_random_dst rng in
  let r () = 4 + Prng.int rng 12 in
  let t () = Msp_isa.Rel (Prng.int rng 1024 - 512) in
  match Prng.int rng 23 with
  | 0 -> Msp_isa.Mov (s (), d ())
  | 1 -> Msp_isa.Add (s (), d ())
  | 2 -> Msp_isa.Addc (s (), d ())
  | 3 -> Msp_isa.Sub (s (), d ())
  | 4 -> Msp_isa.Subc (s (), d ())
  | 5 -> Msp_isa.Cmp (s (), d ())
  | 6 -> Msp_isa.Bit (s (), d ())
  | 7 -> Msp_isa.Bic (s (), d ())
  | 8 -> Msp_isa.Bis (s (), d ())
  | 9 -> Msp_isa.Xor (s (), d ())
  | 10 -> Msp_isa.And_ (s (), d ())
  | 11 -> Msp_isa.Rrc (r ())
  | 12 -> Msp_isa.Rra (r ())
  | 13 -> Msp_isa.Swpb (r ())
  | 14 -> Msp_isa.Sxt (r ())
  | 15 -> Msp_isa.Jnz (t ())
  | 16 -> Msp_isa.Jz (t ())
  | 17 -> Msp_isa.Jnc (t ())
  | 18 -> Msp_isa.Jc (t ())
  | 19 -> Msp_isa.Jn (t ())
  | 20 -> Msp_isa.Jge (t ())
  | 21 -> Msp_isa.Jl (t ())
  | _ -> Msp_isa.Jmp (t ())

let test_msp_encode_decode_roundtrip () =
  let rng = Prng.create 321 in
  for _ = 1 to 2000 do
    let insn = msp_random_instr rng in
    let words = Array.of_list (Msp_isa.encode insn) in
    check_int "size matches" (Msp_isa.size insn) (Array.length words);
    match Msp_isa.decode words 0 with
    | None -> Alcotest.failf "decode failed for %s" (Msp_isa.to_string insn)
    | Some (insn', size) ->
      check_int "decoded size" (Array.length words) size;
      if insn <> insn' then
        Alcotest.failf "roundtrip: %s -> %s" (Msp_isa.to_string insn) (Msp_isa.to_string insn')
  done

let test_asm_labels () =
  let open Avr_isa in
  let prog =
    [
      Avr_asm.L "top"; Avr_asm.I (Ldi (16, 1)); Avr_asm.I (Brne (Label "top"));
      Avr_asm.I (Rjmp (Label "end")); Avr_asm.I Nop; Avr_asm.L "end";
      Avr_asm.I (Rjmp (Label "top"));
    ]
  in
  let words = Avr_asm.assemble prog in
  check_int "length" 5 (Array.length words);
  (match Avr_isa.decode words.(1) with
  | Some (Brne (Rel (-2))) -> ()
  | _ -> Alcotest.fail "backward branch offset");
  (match Avr_isa.decode words.(2) with
  | Some (Rjmp (Rel 1)) -> ()
  | _ -> Alcotest.fail "forward jump offset");
  match Avr_isa.decode words.(4) with
  | Some (Rjmp (Rel (-5))) -> ()
  | _ -> Alcotest.fail "far backward jump"

let test_asm_errors () =
  Alcotest.check_raises "dup label" (Invalid_argument "Avr_asm: duplicate label x") (fun () ->
      ignore (Avr_asm.assemble [ Avr_asm.L "x"; Avr_asm.L "x" ]));
  Alcotest.check_raises "undefined" (Invalid_argument "Avr_asm: undefined label nowhere")
    (fun () -> ignore (Avr_asm.assemble [ Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "nowhere")) ]));
  Alcotest.check_raises "msp undefined" (Invalid_argument "Msp_asm: undefined label nope")
    (fun () -> ignore (Msp_asm.assemble [ Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "nope")) ]))

let test_msp_asm_multiword_offsets () =
  let open Msp_isa in
  (* Multi-word instructions must advance the location counter by their
     size when resolving jumps. *)
  let prog =
    [
      Msp_asm.L "top"; Msp_asm.I (Mov (Imm 0x1234, Dindexed (6, 8)));
      Msp_asm.I (Jnz (Label "top"));
    ]
  in
  let words = Msp_asm.assemble prog in
  check_int "3 + 1 words" 4 (Array.length words);
  match Msp_isa.decode words 3 with
  | Some (Jnz (Rel (-4)), 1) -> ()
  | Some (Jnz (Rel k), _) -> Alcotest.failf "wrong offset %d" k
  | _ -> Alcotest.fail "expected JNZ"

(* ------------------------------------------------------------------ *)
(* Gate-level core vs ISA reference model                               *)

let avr_compare_state ?(check_ram = true) name (sys : System.t) (reference : Avr_ref.t) =
  let nl = sys.System.netlist in
  for i = 0 to 31 do
    Alcotest.(check int)
      (Printf.sprintf "%s: r%d" name i)
      reference.Avr_ref.rf.(i)
      (vec sys.System.sim nl (Printf.sprintf "rf_%d" i) 8)
  done;
  let sreg = vec sys.System.sim nl "sreg" 5 in
  check_bool (name ^ ": C") reference.Avr_ref.flag_c (sreg land 1 <> 0);
  check_bool (name ^ ": Z") reference.Avr_ref.flag_z (sreg land 2 <> 0);
  check_bool (name ^ ": N") reference.Avr_ref.flag_n (sreg land 4 <> 0);
  check_bool (name ^ ": V") reference.Avr_ref.flag_v (sreg land 8 <> 0);
  check_bool (name ^ ": S") reference.Avr_ref.flag_s (sreg land 16 <> 0);
  check_int (name ^ ": portb") reference.Avr_ref.portb (vec sys.System.sim nl "portb" 8);
  if check_ram then
    for a = 0 to 255 do
      check_int (Printf.sprintf "%s: ram[%d]" name a) reference.Avr_ref.ram.(a) sys.System.ram.(a)
    done

let run_avr_against_ref ?(pinb = 0x5A) ~cycles name items =
  let program = Avr_asm.assemble items in
  let sys = System.create_avr ~pins:pinb ~program name in
  System.run sys ~cycles;
  Sim.eval sys.System.sim;
  let reference = Avr_ref.create ~pinb ~program () in
  Avr_ref.run reference ~max_steps:cycles;
  check_bool (name ^ ": reference halted") true reference.Avr_ref.halted;
  avr_compare_state name sys reference

let test_avr_fib_program () = run_avr_against_ref ~cycles:2500 "fib" Programs.avr_fib_halting

let test_avr_fib_expected_values () =
  let program = Avr_asm.assemble Programs.avr_fib_halting in
  let sys = System.create_avr ~program "fib" in
  System.run sys ~cycles:2500;
  Array.iteri
    (fun i expected -> check_int (Printf.sprintf "fib[%d]" i) expected sys.System.ram.(i))
    Programs.avr_fib_expected

let test_avr_conv_program () = run_avr_against_ref ~cycles:8000 "conv" Programs.avr_conv_halting

let test_avr_conv_expected_values () =
  let program = Avr_asm.assemble Programs.avr_conv_halting in
  let sys = System.create_avr ~program "conv" in
  System.run sys ~cycles:8000;
  List.iter
    (fun (addr, expected) ->
      check_int (Printf.sprintf "y at %d" addr) expected sys.System.ram.(addr))
    Programs.avr_conv_expected

let test_avr_sort_program () = run_avr_against_ref ~cycles:6000 "sort" Programs.avr_sort_halting

let test_avr_sort_expected_values () =
  let program = Avr_asm.assemble Programs.avr_sort_halting in
  let sys = System.create_avr ~program "sort" in
  System.run sys ~cycles:6000;
  Array.iteri
    (fun i expected -> check_int (Printf.sprintf "sorted[%d]" i) expected sys.System.ram.(i))
    Programs.avr_sort_expected

let test_avr_flag_semantics () =
  (* Directed flag corner cases: carry chains, Z-chain of SBC/CPC, ROR
     through carry, INC/DEC overflow. *)
  let open Avr_isa in
  let i x = Avr_asm.I x in
  let directed =
    [
      [ i (Ldi (16, 255)); i (Ldi (17, 1)); i (Add (16, 17)); i (Adc (17, 17)) ];
      [ i (Ldi (16, 0x80)); i (Dec 16) ];
      [ i (Ldi (16, 0x7F)); i (Inc 16) ];
      [ i (Ldi (16, 1)); i (Lsr 16); i (Ror 16); i (Ror 16) ];
      [ i (Ldi (16, 0)); i (Ldi (17, 0)); i (Sub (16, 17)); i (Sbc (16, 17)) ];
      [ i (Ldi (16, 5)); i (Neg 16); i (Neg 16); i (Com 16) ];
      [ i (Ldi (16, 200)); i (Cpi (16, 200)); i (Sbci (16, 0)) ];
      [ i (Ldi (16, 0x90)); i (Asr 16); i (Asr 16) ];
      [ i (Ldi (16, 0xAB)); i (Swap 16); i (Swap 16) ];
      [ i (Ldi (24, 0xFF)); i (Ldi (25, 0xFF)); i (Adiw (24, 1)); i (Adiw (24, 63)) ];
      [ i (Ldi (26, 0)); i (Ldi (27, 0)); i (Sbiw (26, 1)); i (Sbiw (26, 63)) ];
      [ i (Ldi (28, 0xFF)); i (Ldi (29, 0x7F)); i (Adiw (28, 1)) ] (* signed overflow *);
      [
        i (Ldi (16, 10)); i (Cpi (16, 20)); i (Brlt (Label "less")); i (Ldi (17, 1));
        Avr_asm.L "less"; i (Ldi (18, 2)); i (Cpi (16, 5)); i (Brge (Label "geq"));
        i (Ldi (19, 3)); Avr_asm.L "geq"; i (Ldi (20, 4));
      ];
      [ i (Ldi (16, 0x80)); i (Dec 16); i (Brvs (Label "v")); i (Ldi (17, 9)); Avr_asm.L "v";
        i (Subi (16, 1)); i (Brmi (Label "m")); i (Ldi (18, 9)); Avr_asm.L "m"; i Nop ];
    ]
  in
  List.iteri
    (fun idx body ->
      let items = body @ [ Avr_asm.L "h"; i (Rjmp (Label "h")) ] in
      run_avr_against_ref ~cycles:200 (Printf.sprintf "flags-%d" idx) items)
    directed

let test_avr_random_programs () =
  let rng = Prng.create 777 in
  for case = 1 to 40 do
    let body =
      List.init 30 (fun _ ->
          let rec pick () =
            let insn = avr_random_instr rng in
            match insn with
            | Avr_isa.Rjmp _ | Avr_isa.Breq _ | Avr_isa.Brne _ | Avr_isa.Brcs _
            | Avr_isa.Brcc _ | Avr_isa.Brmi _ | Avr_isa.Brpl _ | Avr_isa.Brvs _
            | Avr_isa.Brvc _ | Avr_isa.Brlt _ | Avr_isa.Brge _ ->
              pick () (* keep random programs straight-line *)
            | _ -> insn
          in
          Avr_asm.I (pick ()))
    in
    (* Seed the pointer so loads/stores stay deterministic but varied. *)
    let items =
      (Avr_asm.I (Avr_isa.Ldi (26, Prng.int rng 256)) :: body)
      @ [ Avr_asm.L "h"; Avr_asm.I (Avr_isa.Rjmp (Avr_isa.Label "h")) ]
    in
    run_avr_against_ref ~cycles:120 (Printf.sprintf "random-%d" case) items
  done

(* ---- MSP430 ------------------------------------------------------- *)

let msp_compare_state ?(check_mem = true) name (sys : System.t) (reference : Msp_ref.t) =
  let nl = sys.System.netlist in
  for r = 4 to 15 do
    check_int
      (Printf.sprintf "%s: r%d" name r)
      reference.Msp_ref.regs.(r)
      (vec sys.System.sim nl (Printf.sprintf "rf_%d" r) 16)
  done;
  let sr = vec sys.System.sim nl "sr" 4 in
  check_bool (name ^ ": C") reference.Msp_ref.flag_c (sr land 1 <> 0);
  check_bool (name ^ ": Z") reference.Msp_ref.flag_z (sr land 2 <> 0);
  check_bool (name ^ ": N") reference.Msp_ref.flag_n (sr land 4 <> 0);
  check_bool (name ^ ": V") reference.Msp_ref.flag_v (sr land 8 <> 0);
  if check_mem then
    Array.iteri
      (fun i v -> check_int (Printf.sprintf "%s: mem[%d]" name i) v sys.System.ram.(i))
      reference.Msp_ref.mem

let run_msp_against_ref ~cycles name items =
  let program = Msp_asm.assemble items in
  let sys = System.create_msp ~program name in
  System.run sys ~cycles;
  Sim.eval sys.System.sim;
  let reference = Msp_ref.create ~words:2048 ~program in
  Msp_ref.run reference ~max_steps:cycles;
  check_bool (name ^ ": reference halted") true reference.Msp_ref.halted;
  msp_compare_state name sys reference

let test_msp_fib_program () = run_msp_against_ref ~cycles:3000 "fib" Programs.msp_fib_halting

let test_msp_fib_expected_values () =
  let program = Msp_asm.assemble Programs.msp_fib_halting in
  let sys = System.create_msp ~program "fib" in
  System.run sys ~cycles:3000;
  Array.iteri
    (fun i expected ->
      check_int
        (Printf.sprintf "fib[%d]" i)
        expected
        sys.System.ram.((Programs.msp_fib_base / 2) + i))
    Programs.msp_fib_expected

let test_msp_conv_program () = run_msp_against_ref ~cycles:25000 "conv" Programs.msp_conv_halting

let test_msp_conv_expected_values () =
  let program = Msp_asm.assemble Programs.msp_conv_halting in
  let sys = System.create_msp ~program "conv" in
  System.run sys ~cycles:25000;
  List.iter
    (fun (addr, expected) ->
      check_int (Printf.sprintf "y at 0x%x" addr) expected sys.System.ram.(addr / 2))
    Programs.msp_conv_expected

let test_msp_addressing_modes () =
  let open Msp_isa in
  let i x = Msp_asm.I x in
  let cases =
    [
      (* register/immediate *)
      [ i (Mov (Imm 0x1234, Dreg 4)); i (Add (Reg 4, Dreg 4)) ];
      (* indexed store + load back *)
      [
        i (Mov (Imm 0x400, Dreg 6)); i (Mov (Imm 77, Dindexed (6, 4)));
        i (Mov (Indexed (6, 4), Dreg 5));
      ];
      (* indirect and post-increment *)
      [
        i (Mov (Imm 0x400, Dreg 6)); i (Mov (Imm 1111, Dindexed (6, 0)));
        i (Mov (Imm 2222, Dindexed (6, 2))); i (Mov (Indirect_inc 6, Dreg 7));
        i (Mov (Indirect 6, Dreg 8)); i (Add (Indirect_inc 6, Dreg 7));
      ];
      (* format II *)
      [
        i (Mov (Imm 0x8001, Dreg 4)); i (Rra 4); i (Mov (Imm 0x8001, Dreg 5));
        i (Rrc 5); i (Rrc 5); i (Mov (Imm 0x00AB, Dreg 9)); i (Swpb 9);
        i (Mov (Imm 0x0080, Dreg 10)); i (Sxt 10);
      ];
      (* flags: carry / overflow / zero *)
      [
        i (Mov (Imm 0xFFFF, Dreg 4)); i (Add (Imm 1, Dreg 4)); i (Addc (Imm 0, Dreg 4));
        i (Mov (Imm 0x8000, Dreg 5)); i (Sub (Imm 1, Dreg 5)); i (Cmp (Reg 5, Dreg 5));
        i (Subc (Imm 0, Dreg 5));
      ];
      (* logic ops *)
      [
        i (Mov (Imm 0xF0F0, Dreg 4)); i (And_ (Imm 0xFF00, Dreg 4));
        i (Bis (Imm 0x000F, Dreg 4)); i (Xor (Imm 0xFFFF, Dreg 4));
        i (Bic (Imm 0x00F0, Dreg 4)); i (Bit (Imm 0x0F00, Dreg 4));
      ];
    ]
  in
  List.iteri
    (fun idx body ->
      let items = body @ [ Msp_asm.L "h"; Msp_asm.I (Jmp (Label "h")) ] in
      run_msp_against_ref ~cycles:800 (Printf.sprintf "modes-%d" idx) items)
    cases

let test_msp_random_programs () =
  let rng = Prng.create 999 in
  for case = 1 to 25 do
    let safe_src () : Msp_isa.src =
      match Prng.int rng 6 with
      | 0 | 1 -> Msp_isa.Reg (4 + Prng.int rng 9)
      | 2 -> Msp_isa.Imm (Prng.int rng 0x10000)
      | 3 -> Msp_isa.Indexed (13, 2 * Prng.int rng 16)
      | 4 -> Msp_isa.Indirect 13
      | _ -> Msp_isa.Indirect_inc 13
    in
    let safe_dst () : Msp_isa.dst =
      if Prng.int rng 3 = 0 then Msp_isa.Dindexed (13, 2 * Prng.int rng 16)
      else Msp_isa.Dreg (4 + Prng.int rng 9)
    in
    let random_op () : Msp_isa.t =
      let s = safe_src () and d = safe_dst () in
      match Prng.int rng 15 with
      | 0 -> Msp_isa.Mov (s, d)
      | 1 -> Msp_isa.Add (s, d)
      | 2 -> Msp_isa.Addc (s, d)
      | 3 -> Msp_isa.Sub (s, d)
      | 4 -> Msp_isa.Subc (s, d)
      | 5 -> Msp_isa.Cmp (s, d)
      | 6 -> Msp_isa.Bit (s, d)
      | 7 -> Msp_isa.Bic (s, d)
      | 8 -> Msp_isa.Bis (s, d)
      | 9 -> Msp_isa.Xor (s, d)
      | 10 -> Msp_isa.And_ (s, d)
      | 11 -> Msp_isa.Rrc (4 + Prng.int rng 9)
      | 12 -> Msp_isa.Rra (4 + Prng.int rng 9)
      | 13 -> Msp_isa.Swpb (4 + Prng.int rng 9)
      | _ -> Msp_isa.Sxt (4 + Prng.int rng 9)
    in
    (* R13 is the memory window pointer, reset periodically; R14/R15 stay
       free so the register file keeps unwritten cells too. *)
    let body =
      List.concat
        (List.init 20 (fun i ->
             let reseed =
               if i mod 7 = 0 then [ Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 0x400, Msp_isa.Dreg 13)) ]
               else []
             in
             reseed @ [ Msp_asm.I (random_op ()) ]))
    in
    let items =
      (Msp_asm.I (Msp_isa.Mov (Msp_isa.Imm 0x400, Msp_isa.Dreg 13)) :: body)
      @ [ Msp_asm.L "h"; Msp_asm.I (Msp_isa.Jmp (Msp_isa.Label "h")) ]
    in
    run_msp_against_ref ~cycles:1200 (Printf.sprintf "random-%d" case) items
  done

let test_core_sizes () =
  let avr = System.avr_netlist () in
  check_int "avr flops" 306 (Netlist.n_flops avr);
  check_int "avr rf flops" 256 (List.length (Netlist.flops_matching avr ~prefix:"rf_"));
  check_bool "avr has gates" true (Netlist.n_gates avr > 500);
  let msp = System.msp_netlist () in
  check_int "msp flops" 311 (Netlist.n_flops msp);
  check_int "msp rf flops" 192 (List.length (Netlist.flops_matching msp ~prefix:"rf_"));
  check_bool "msp has gates" true (Netlist.n_gates msp > 500)

let suite =
  [
    Alcotest.test_case "avr encode/decode roundtrip" `Quick test_avr_encode_decode_roundtrip;
    Alcotest.test_case "avr encode errors" `Quick test_avr_encode_errors;
    Alcotest.test_case "msp encode/decode roundtrip" `Quick test_msp_encode_decode_roundtrip;
    Alcotest.test_case "assembler labels" `Quick test_asm_labels;
    Alcotest.test_case "assembler errors" `Quick test_asm_errors;
    Alcotest.test_case "msp multiword offsets" `Quick test_msp_asm_multiword_offsets;
    Alcotest.test_case "avr fib vs reference" `Quick test_avr_fib_program;
    Alcotest.test_case "avr fib values" `Quick test_avr_fib_expected_values;
    Alcotest.test_case "avr conv vs reference" `Quick test_avr_conv_program;
    Alcotest.test_case "avr conv values" `Quick test_avr_conv_expected_values;
    Alcotest.test_case "avr sort vs reference" `Quick test_avr_sort_program;
    Alcotest.test_case "avr sort values" `Quick test_avr_sort_expected_values;
    Alcotest.test_case "avr flag corner cases" `Quick test_avr_flag_semantics;
    Alcotest.test_case "avr random programs" `Slow test_avr_random_programs;
    Alcotest.test_case "msp fib vs reference" `Quick test_msp_fib_program;
    Alcotest.test_case "msp fib values" `Quick test_msp_fib_expected_values;
    Alcotest.test_case "msp conv vs reference" `Quick test_msp_conv_program;
    Alcotest.test_case "msp conv values" `Quick test_msp_conv_expected_values;
    Alcotest.test_case "msp addressing modes" `Quick test_msp_addressing_modes;
    Alcotest.test_case "msp random programs" `Slow test_msp_random_programs;
    Alcotest.test_case "core sizes" `Quick test_core_sizes;
  ]
