open Helpers
module Waveform = Pruning_sim.Waveform

let counter_waveform cycles =
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 1;
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.run sim ~trace ~cycles ();
  (nl, Waveform.create nl trace)

let test_wire_lane () =
  let _, wf = counter_waveform 8 in
  let lane = Waveform.wire_lane wf "count[0]" ~from_cycle:0 ~cycles:8 in
  check_string "toggling lsb" "count[0]      _-_-_-_-" lane;
  let lane1 = Waveform.wire_lane wf "count[1]" ~from_cycle:0 ~cycles:8 in
  check_string "bit1" "count[1]      __--__--" lane1

let test_vector_lane () =
  let _, wf = counter_waveform 6 in
  let lane = Waveform.vector_lane wf "count" ~from_cycle:0 ~cycles:6 in
  check_string "hex changes" "count         |0|1|2|3|4|5" lane

let test_vector_holds_value () =
  (* With enable off, the vector lane shows one change then silence. *)
  let nl = counter_netlist () in
  let sim = Sim.create nl in
  Sim.set_port sim "enable" 0;
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  Sim.run sim ~trace ~cycles:5 ();
  let wf = Waveform.create nl trace in
  check_string "held" "count         |0        " (Waveform.vector_lane wf "count" ~from_cycle:0 ~cycles:5)

let test_render_multi_lane () =
  let _, wf = counter_waveform 10 in
  let view = Waveform.render wf ~names:[ "count"; "wrap"; "count[3]" ] ~from_cycle:0 ~cycles:10 in
  let lines = String.split_on_char '\n' view |> List.filter (fun l -> l <> "") in
  check_int "ruler + three lanes" 4 (List.length lines);
  check_bool "ruler first" true (String.length (List.nth lines 0) > 5);
  (* all lanes share one width *)
  let widths = List.map String.length lines in
  List.iter (fun w -> check_int "aligned" (List.hd widths) w) widths

let test_window_validation () =
  let _, wf = counter_waveform 4 in
  Alcotest.check_raises "out of range" (Invalid_argument "Waveform: window out of range")
    (fun () -> ignore (Waveform.wire_lane wf "count[0]" ~from_cycle:2 ~cycles:10));
  Alcotest.check_raises "unknown wire" Not_found (fun () ->
      ignore (Waveform.wire_lane wf "nope" ~from_cycle:0 ~cycles:2));
  Alcotest.check_raises "unknown vector" Not_found (fun () ->
      ignore (Waveform.vector_lane wf "nope" ~from_cycle:0 ~cycles:2))

let suite =
  [
    Alcotest.test_case "wire lane" `Quick test_wire_lane;
    Alcotest.test_case "vector lane" `Quick test_vector_lane;
    Alcotest.test_case "vector holds value" `Quick test_vector_holds_value;
    Alcotest.test_case "multi-lane render" `Quick test_render_multi_lane;
    Alcotest.test_case "window validation" `Quick test_window_validation;
  ]
