open Helpers

let test_figure1_structure () =
  let nl = figure1_netlist () in
  check_int "wires" 10 (Netlist.n_wires nl);
  check_int "gates" 5 (Netlist.n_gates nl);
  check_int "flops" 0 (Netlist.n_flops nl);
  check_string "wire 0 name" "a" (Netlist.wire_name nl 0);
  check_int "find d" 3 (Netlist.find_wire nl "d");
  check_bool "k is primary output" true nl.Netlist.is_primary_output.(Netlist.find_wire nl "k");
  check_bool "a is not primary output" false nl.Netlist.is_primary_output.(0)

let test_topological_order () =
  let nl = figure1_netlist () in
  (* Gates D (id 3) and E (id 4) read wire g produced by gate B (id 1), so
     B must come first. *)
  let pos = Array.make (Netlist.n_gates nl) 0 in
  Array.iteri (fun i gid -> pos.(gid) <- i) nl.Netlist.topo;
  check_bool "B before D" true (pos.(1) < pos.(3));
  check_bool "B before E" true (pos.(1) < pos.(4));
  check_int "level of B" 0 nl.Netlist.level.(1);
  check_int "level of D" 1 nl.Netlist.level.(3)

let test_cone_of_d () =
  let nl = figure1_netlist () in
  let cone = Cone.compute nl (Netlist.find_wire nl "d") in
  check_int "cone gates" 3 (Cone.size cone);
  let wire = Netlist.find_wire nl in
  List.iter
    (fun n -> check_bool ("in cone: " ^ n) true (Cone.member cone (wire n)))
    [ "d"; "g"; "k"; "l" ];
  List.iter
    (fun n -> check_bool ("not in cone: " ^ n) false (Cone.member cone (wire n)))
    [ "a"; "b"; "c"; "e"; "f"; "h" ];
  Alcotest.(check (list int)) "border wires" [ wire "c"; wire "f"; wire "h" ] cone.Cone.border;
  Alcotest.(check (list int)) "output sinks" [ wire "k"; wire "l" ] cone.Cone.sinks_outputs;
  check_bool "source not a sink" false cone.Cone.source_is_sink

let test_cone_of_e () =
  let nl = figure1_netlist () in
  let cone = Cone.compute nl (Netlist.find_wire nl "e") in
  check_int "cone gates" 2 (Cone.size cone);
  check_int "border count" 1 (Cone.border_count cone);
  Alcotest.(check (list int)) "border is g" [ Netlist.find_wire nl "g" ] cone.Cone.border

let test_cone_source_is_sink () =
  (* A wire that is directly a primary output can never be masked. *)
  let b = Netlist.Builder.create "direct" in
  let i = Netlist.Builder.add_wire b "i" in
  let o = Netlist.Builder.add_wire b "o" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.BUF) [| i |] o;
  Netlist.Builder.add_input_port b "i" [| i |];
  Netlist.Builder.add_output_port b "o" [| o |];
  let nl = Netlist.Builder.finalize b in
  let cone = Cone.compute nl o in
  check_bool "output wire is its own sink" true cone.Cone.source_is_sink;
  let cone_i = Cone.compute nl i in
  check_bool "input feeding buf only" false cone_i.Cone.source_is_sink

let test_builder_multiple_drivers () =
  let b = Netlist.Builder.create "bad" in
  let w1 = Netlist.Builder.add_wire b "w1" in
  let w2 = Netlist.Builder.add_wire b "w2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.BUF) [| w1 |] w2;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| w1 |] w2;
  Netlist.Builder.add_input_port b "w1" [| w1 |];
  Alcotest.check_raises "multiple drivers" (Netlist.Invalid "wire w2 has multiple drivers")
    (fun () -> ignore (Netlist.Builder.finalize b))

let test_builder_no_driver () =
  let b = Netlist.Builder.create "bad" in
  let w1 = Netlist.Builder.add_wire b "w1" in
  let w2 = Netlist.Builder.add_wire b "w2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.BUF) [| w1 |] w2;
  Alcotest.check_raises "no driver" (Netlist.Invalid "wire w1 has no driver") (fun () ->
      ignore (Netlist.Builder.finalize b))

let test_builder_arity_mismatch () =
  let b = Netlist.Builder.create "bad" in
  let w1 = Netlist.Builder.add_wire b "w1" in
  let w2 = Netlist.Builder.add_wire b "w2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.AND2) [| w1 |] w2;
  Netlist.Builder.add_input_port b "w1" [| w1 |];
  Alcotest.check_raises "arity" (Netlist.Invalid "gate 0 (AND2_X1): 1 connections for arity 2")
    (fun () -> ignore (Netlist.Builder.finalize b))

let test_builder_combinational_cycle () =
  let b = Netlist.Builder.create "bad" in
  let w1 = Netlist.Builder.add_wire b "w1" in
  let w2 = Netlist.Builder.add_wire b "w2" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| w2 |] w1;
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| w1 |] w2;
  Alcotest.check_raises "cycle" (Netlist.Invalid "combinational cycle through 2 gate(s)")
    (fun () -> ignore (Netlist.Builder.finalize b))

let test_flop_breaks_cycle () =
  (* Feedback through a flop is legal. *)
  let b = Netlist.Builder.create "toggler" in
  let q = Netlist.Builder.add_wire b "q" in
  let d = Netlist.Builder.add_wire b "d" in
  Netlist.Builder.add_gate b (Cell.of_kind Cell.INV) [| q |] d;
  Netlist.Builder.add_flop b "bit" ~d ~q;
  Netlist.Builder.add_output_port b "q" [| q |];
  let nl = Netlist.Builder.finalize b in
  check_int "one flop" 1 (Netlist.n_flops nl);
  check_bool "driver of q" true (nl.Netlist.driver.(q) = Netlist.Driver_flop 0)

let test_flop_queries () =
  let b = Netlist.Builder.create "regs" in
  let mk name =
    let q = Netlist.Builder.add_wire b (name ^ "_q") in
    Netlist.Builder.add_flop b name ~d:q ~q
  in
  mk "rf_0[0]";
  mk "rf_0[1]";
  mk "pc[0]";
  mk "sreg[0]";
  let nl = Netlist.Builder.finalize b in
  check_int "rf flops" 2 (List.length (Netlist.flops_matching nl ~prefix:"rf_"));
  check_int "non-rf flops" 2 (List.length (Netlist.flops_excluding nl ~prefix:"rf_"));
  let f = Netlist.find_flop nl "pc[0]" in
  check_string "found flop" "pc[0]" f.Netlist.flop_name;
  Alcotest.check_raises "missing flop" Not_found (fun () ->
      ignore (Netlist.find_flop nl "nope"))

let test_cell_histogram () =
  let nl = figure1_netlist () in
  let hist = Netlist.cell_histogram nl in
  let count k = Option.value ~default:0 (List.assoc_opt k hist) in
  check_int "nand2 count" 1 (count Cell.NAND2);
  check_int "and2 count" 1 (count Cell.AND2);
  check_int "xor2 count" 1 (count Cell.XOR2);
  check_int "inv count" 1 (count Cell.INV);
  check_int "or2 count" 1 (count Cell.OR2)

let test_textio_roundtrip () =
  let nl = counter_netlist () in
  let text = Pruning_netlist.Textio.to_string nl in
  let nl' = Pruning_netlist.Textio.of_string ~name:"ignored" text in
  check_string "name survives" nl.Netlist.name nl'.Netlist.name;
  check_int "wires" (Netlist.n_wires nl) (Netlist.n_wires nl');
  check_int "gates" (Netlist.n_gates nl) (Netlist.n_gates nl');
  check_int "flops" (Netlist.n_flops nl) (Netlist.n_flops nl');
  check_string "same text" text (Pruning_netlist.Textio.to_string nl')

let test_textio_file_roundtrip () =
  let nl = figure1_netlist () in
  let path = Filename.temp_file "pruning" ".nl" in
  Pruning_netlist.Textio.save nl path;
  let nl' = Pruning_netlist.Textio.load path in
  Sys.remove path;
  check_string "text equal"
    (Pruning_netlist.Textio.to_string nl)
    (Pruning_netlist.Textio.to_string nl')

let test_textio_errors () =
  let bad = "wire 0 a\nwire 2 b\n" in
  Alcotest.check_raises "non-dense ids" (Failure "Textio: line 2: wire id 2, expected 1")
    (fun () -> ignore (Pruning_netlist.Textio.of_string ~name:"x" bad));
  let bad2 = "wire 0 a\ngate FOO_X1 0\n" in
  Alcotest.check_raises "unknown cell" (Failure "Textio: line 2: unknown cell FOO_X1") (fun () ->
      ignore (Pruning_netlist.Textio.of_string ~name:"x" bad2))

let test_dot_export () =
  let nl = figure1_netlist () in
  let cone = Cone.compute nl (Netlist.find_wire nl "d") in
  let dot = Pruning_netlist.Dot.to_string ~highlight_cone:cone nl in
  check_bool "has digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle haystack =
    let nl_ = String.length needle and hl = String.length haystack in
    let rec go i = i + nl_ <= hl && (String.sub haystack i nl_ = needle || go (i + 1)) in
    go 0
  in
  check_bool "highlights cone gate" true (contains "lightsalmon" dot);
  check_bool "mentions XOR2" true (contains "XOR2" dot)

let suite =
  [
    Alcotest.test_case "figure1 structure" `Quick test_figure1_structure;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "cone of d (paper fig 1a)" `Quick test_cone_of_d;
    Alcotest.test_case "cone of e" `Quick test_cone_of_e;
    Alcotest.test_case "cone source is sink" `Quick test_cone_source_is_sink;
    Alcotest.test_case "builder: multiple drivers" `Quick test_builder_multiple_drivers;
    Alcotest.test_case "builder: no driver" `Quick test_builder_no_driver;
    Alcotest.test_case "builder: arity mismatch" `Quick test_builder_arity_mismatch;
    Alcotest.test_case "builder: combinational cycle" `Quick test_builder_combinational_cycle;
    Alcotest.test_case "flop breaks cycle" `Quick test_flop_breaks_cycle;
    Alcotest.test_case "flop queries" `Quick test_flop_queries;
    Alcotest.test_case "cell histogram" `Quick test_cell_histogram;
    Alcotest.test_case "textio roundtrip" `Quick test_textio_roundtrip;
    Alcotest.test_case "textio file roundtrip" `Quick test_textio_file_roundtrip;
    Alcotest.test_case "textio errors" `Quick test_textio_errors;
    Alcotest.test_case "dot export" `Quick test_dot_export;
  ]
