open Helpers
module Term = Pruning_mate.Term
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Select = Pruning_mate.Select
module Cost = Pruning_mate.Cost
module Fault_space = Pruning_fi.Fault_space
module Oracle = Pruning_fi.Oracle

let term_pairs t = List.map (fun (l : Term.literal) -> (l.Term.wire, l.Term.value)) (Term.literals t)

(* ------------------------------------------------------------------ *)
(* Term algebra                                                         *)

let test_term_normalization () =
  match Term.of_literals [ (3, true); (1, false); (3, true) ] with
  | None -> Alcotest.fail "consistent literals rejected"
  | Some t ->
    Alcotest.(check (list (pair int bool))) "sorted, deduped" [ (1, false); (3, true) ]
      (term_pairs t)

let test_term_contradiction () =
  check_bool "contradiction" true (Term.of_literals [ (2, true); (2, false) ] = None)

let test_term_conjoin () =
  let t1 = Option.get (Term.of_literals [ (1, true) ]) in
  let t2 = Option.get (Term.of_literals [ (2, false) ]) in
  let t3 = Option.get (Term.of_literals [ (1, false) ]) in
  (match Term.conjoin t1 t2 with
  | Some t -> Alcotest.(check (list (pair int bool))) "merge" [ (1, true); (2, false) ] (term_pairs t)
  | None -> Alcotest.fail "conjoin failed");
  check_bool "conflict" true (Term.conjoin t1 t3 = None)

let test_term_holds () =
  let t = Option.get (Term.of_literals [ (0, true); (2, false) ]) in
  check_bool "holds" true (Term.holds t (fun w -> w = 0));
  check_bool "fails" false (Term.holds t (fun _ -> true));
  check_bool "always true" true (Term.holds Term.always_true (fun _ -> false))

(* ------------------------------------------------------------------ *)
(* Figure 1 of the paper                                                *)

let test_search_paper_wire_d () =
  let nl = figure1_netlist () in
  let result = Search.search_wire nl Search.default_params (Netlist.find_wire nl "d") in
  check_int "cone size" 3 result.Search.cone_size;
  match result.Search.outcome with
  | Search.Unmaskable -> Alcotest.fail "d is maskable"
  | Search.Mates mates ->
    let f = Netlist.find_wire nl "f" and h = Netlist.find_wire nl "h" in
    Alcotest.(check (list (list (pair int bool))))
      "exactly the paper's border MATE (!f & h)"
      [ [ (f, false); (h, true) ] ]
      (List.map term_pairs mates)

let test_search_paper_wire_e () =
  let nl = figure1_netlist () in
  let result = Search.search_wire nl Search.default_params (Netlist.find_wire nl "e") in
  check_bool "e unmaskable (paper)" true (result.Search.outcome = Search.Unmaskable)

let test_search_paper_wire_a () =
  let nl = figure1_netlist () in
  let result = Search.search_wire nl Search.default_params (Netlist.find_wire nl "a") in
  match result.Search.outcome with
  | Search.Unmaskable -> Alcotest.fail "a is maskable"
  | Search.Mates mates ->
    let b = Netlist.find_wire nl "b" and g = Netlist.find_wire nl "g" in
    Alcotest.(check (list (list (pair int bool))))
      "a masked by !b (at the NAND) or !g (at the AND)"
      [ [ (b, false) ]; [ (g, false) ] ]
      (List.map term_pairs mates)

let test_search_direct_output_unmaskable () =
  let nl = figure1_netlist () in
  (* h drives a primary output: a fault on h itself cannot be masked. *)
  let result = Search.search_wire nl Search.default_params (Netlist.find_wire nl "h") in
  check_bool "h unmaskable" true (result.Search.outcome = Search.Unmaskable)

let test_search_depth_limit () =
  (* With depth 0 no gate-masking terms are collected: the wire is not
     structurally unmaskable, but no MATE can be built. *)
  let nl = figure1_netlist () in
  let params = { Search.default_params with Search.depth = 0 } in
  let result = Search.search_wire nl params (Netlist.find_wire nl "d") in
  check_int "no options at depth 0" 0 result.Search.n_options;
  check_bool "depth 0 -> unmaskable (early abort)" true (result.Search.outcome = Search.Unmaskable)

let test_search_max_terms_limit () =
  (* The (!f & h) MATE for d needs two gate-masking terms. *)
  let nl = figure1_netlist () in
  let params = { Search.default_params with Search.max_terms = 1 } in
  let result = Search.search_wire nl params (Netlist.find_wire nl "d") in
  check_bool "max_terms 1 -> nothing for d" true (result.Search.outcome = Search.Mates [])

(* ------------------------------------------------------------------ *)
(* Sequential figure-1 variant: search flops, check soundness with the
   oracle under exhaustive stimulus.                                     *)

let test_search_flops_figure1_seq () =
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  check_int "five faulty wires" 5 (Search.n_faulty_wires report);
  check_int "one unmaskable (e)" 1 (Search.n_unmaskable report);
  let by_name name =
    let f = Netlist.find_flop nl name in
    let fr =
      List.find (fun (r : Search.flop_result) -> r.Search.flop.Netlist.flop_id = f.Netlist.flop_id)
        report.Search.flop_results
    in
    fr.Search.result.Search.outcome
  in
  check_bool "e unmaskable" true (by_name "e" = Search.Unmaskable);
  (match by_name "d" with
  | Search.Mates [ t ] -> check_int "d mate inputs" 2 (Term.n_inputs t)
  | _ -> Alcotest.fail "expected exactly one MATE for d");
  match by_name "a" with
  | Search.Mates mates -> check_int "two mates for a" 2 (List.length mates)
  | Search.Unmaskable -> Alcotest.fail "a maskable"

let exhaustive_soundness nl =
  (* For every flop state (set via inputs then latched), every MATE that
     holds must agree with the one-cycle oracle. *)
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let sim = Sim.create nl in
  let n = Netlist.n_flops nl in
  let input_wires =
    List.concat_map (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires) nl.Netlist.inputs
  in
  for pattern = 0 to (1 lsl n) - 1 do
    (* Drive the state directly. *)
    Array.iteri (fun i (f : Netlist.flop) -> Sim.set_flop sim f.Netlist.flop_id (pattern land (1 lsl i) <> 0))
      nl.Netlist.flops;
    (* Inputs low; they only matter for next-state of these flops. *)
    List.iter (fun w -> Sim.set_input sim w false) input_wires;
    Sim.eval sim;
    List.iter
      (fun (fr : Search.flop_result) ->
        match fr.Search.result.Search.outcome with
        | Search.Unmaskable -> ()
        | Search.Mates mates ->
          List.iter
            (fun term ->
              if Term.holds term (fun w -> Sim.peek sim w) then begin
                let benign =
                  Oracle.one_cycle_benign sim ~flop_id:fr.Search.flop.Netlist.flop_id
                in
                if not benign then
                  Alcotest.failf "unsound MATE %s for %s under state %d"
                    (Term.to_string nl term) fr.Search.flop.Netlist.flop_name pattern
              end)
            mates)
      report.Search.flop_results
  done

let test_soundness_figure1_seq () = exhaustive_soundness (figure1_seq_netlist ())

(* Random netlist generator for property-based soundness testing. *)
let random_netlist rng index =
  let b = Netlist.Builder.create (Printf.sprintf "random%d" index) in
  let n_inputs = 2 + Prng.int rng 3 in
  let n_flops = 2 + Prng.int rng 4 in
  let n_gates = 5 + Prng.int rng 25 in
  let inputs = List.init n_inputs (fun i -> Netlist.Builder.add_wire b (Printf.sprintf "in%d" i)) in
  let q_wires = List.init n_flops (fun i -> Netlist.Builder.add_wire b (Printf.sprintf "ff%d" i)) in
  let pool = ref (inputs @ q_wires) in
  let combinational_cells =
    List.filter
      (fun (c : Cell.t) -> c.Cell.arity > 0)
      Cell.all
  in
  let gate_outputs = ref [] in
  for g = 0 to n_gates - 1 do
    let cell = Prng.pick rng combinational_cells in
    let ins = Array.init cell.Cell.arity (fun _ -> Prng.pick rng !pool) in
    let out = Netlist.Builder.add_wire b (Printf.sprintf "g%d" g) in
    Netlist.Builder.add_gate b cell ins out;
    pool := out :: !pool;
    gate_outputs := out :: !gate_outputs
  done;
  (* Flop D pins and a couple of primary outputs from the pool. *)
  List.iteri
    (fun i q -> Netlist.Builder.add_flop b (Printf.sprintf "ff%d" i) ~d:(Prng.pick rng !pool) ~q)
    q_wires;
  List.iteri (fun i w -> Netlist.Builder.add_input_port b (Printf.sprintf "in%d" i) [| w |]) inputs;
  let n_outputs = 1 + Prng.int rng 2 in
  for i = 0 to n_outputs - 1 do
    Netlist.Builder.add_output_port b (Printf.sprintf "out%d" i) [| Prng.pick rng !pool |]
  done;
  Netlist.Builder.finalize b

let test_soundness_random_netlists () =
  let rng = Prng.create 4242 in
  for index = 1 to 60 do
    let nl = random_netlist rng index in
    let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
    let sim = Sim.create nl in
    let input_wires =
      List.concat_map (fun (p : Netlist.port) -> Array.to_list p.Netlist.port_wires)
        nl.Netlist.inputs
    in
    (* Random walks instead of exhaustive state: set inputs randomly and
       step, checking triggered MATEs against the oracle. *)
    for _cycle = 1 to 40 do
      List.iter (fun w -> Sim.set_input sim w (Prng.bool rng)) input_wires;
      Sim.eval sim;
      List.iter
        (fun (fr : Search.flop_result) ->
          match fr.Search.result.Search.outcome with
          | Search.Unmaskable -> ()
          | Search.Mates mates ->
            List.iter
              (fun term ->
                if Term.holds term (fun w -> Sim.peek sim w) then
                  if not (Oracle.one_cycle_benign sim ~flop_id:fr.Search.flop.Netlist.flop_id)
                  then
                    Alcotest.failf "netlist %d: unsound MATE %s for %s" index
                      (Term.to_string nl term) fr.Search.flop.Netlist.flop_name)
              mates)
        report.Search.flop_results;
      Sim.latch sim
    done
  done

(* ------------------------------------------------------------------ *)
(* Mateset, replay, selection, cost                                     *)

let seq_setup ~cycles ~stimulus =
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let sim = Sim.create nl in
  let trace = Trace.create ~n_wires:(Netlist.n_wires nl) in
  List.iteri
    (fun cycle values ->
      ignore cycle;
      List.iter2 (fun name v -> Sim.set_port sim (name ^ "_in") v) [ "a"; "b"; "c"; "d"; "e" ] values;
      Sim.step sim ~trace ())
    stimulus;
  ignore cycles;
  (nl, report, set, trace)

let test_mateset_merging () =
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  (* a has mates {!b, !g}, b has {!a, !g}: !g is shared by a and b (and
     also masks c and d at the AND/OR pair? !g masks only via gate D for
     a/b; for c/d the XOR kills masking at B but D/E can still cut). *)
  check_bool "set nonempty" true (Mateset.size set > 0);
  let g = Netlist.find_wire nl "g" in
  let not_g = Option.get (Term.of_literals [ (g, false) ]) in
  let shared =
    Array.to_list set.Mateset.mates
    |> List.find_opt (fun (m : Mateset.mate) -> Term.equal m.Mateset.term not_g)
  in
  match shared with
  | None -> Alcotest.fail "expected a shared !g mate"
  | Some m -> check_bool "masks more than one flop" true (List.length m.Mateset.flop_ids >= 2)

let test_replay_and_coverage () =
  (* Stimulus: first two cycles make !b then !a hold (paper's Figure 1b
     narration: "in the first two cycles, the MATEs !b and !a trigger"). *)
  let stimulus =
    [
      (* a b c d e -- values are LOADED into flops for the NEXT cycle;
         cycle 0 state is all zeros. *)
      [ 1; 0; 1; 1; 0 ];
      [ 0; 1; 1; 0; 0 ];
      [ 1; 1; 0; 1; 1 ];
      [ 1; 1; 1; 1; 1 ];
      [ 0; 0; 0; 0; 0 ];
      [ 1; 0; 1; 0; 1 ];
      [ 0; 1; 0; 1; 0 ];
      [ 1; 1; 1; 0; 0 ];
    ]
  in
  let nl, _report, set, trace = seq_setup ~cycles:8 ~stimulus in
  let triggers = Replay.triggers set trace in
  check_int "trace cycles" 8 (Replay.n_cycles triggers);
  let space = Fault_space.full nl ~cycles:8 in
  let matrix = Replay.masked set triggers ~space () in
  (* Cycle 0: all flops are 0: a=0,b=0 -> !b and !a hold; e=0 -> h=1...
     d's mate needs f=0&h=1: f=NAND(0,0)=1: not masked. *)
  let idx name = Option.get (Fault_space.flop_index space (Netlist.find_flop nl name).Netlist.flop_id) in
  check_bool "cycle0 a masked" true matrix.(0).(idx "a");
  check_bool "cycle0 b masked" true matrix.(0).(idx "b");
  check_bool "cycle0 d not masked" false matrix.(0).(idx "d");
  check_bool "e never masked" true (Array.for_all (fun row -> not row.(idx "e")) matrix);
  (* Cycle 3 state: a=1,b=1 (loaded at end of cycle 2), e=1: f=0, h=0:
     d's mate (!f & h) fails (h=0)... cycle with a=1,b=1,e=0 is cycle 4?
     stimulus row 3 loads a=1,b=1,e=1 for cycle 4. Check via explicit
     evaluation instead of hand-tracking: masked iff the oracle agrees. *)
  let reduction = Replay.reduction_percent set triggers ~space () in
  check_bool "some reduction" true (reduction > 0.);
  check_bool "not everything masked" true (reduction < 100.);
  (* Every masked (flop, cycle) is truly benign: replay soundness against
     a fresh simulation of the same stimulus. *)
  let sim = Sim.create nl in
  List.iteri
    (fun cycle values ->
      List.iter2 (fun name v -> Sim.set_port sim (name ^ "_in") v) [ "a"; "b"; "c"; "d"; "e" ] values;
      Sim.eval sim;
      Array.iteri
        (fun fi masked ->
          if masked then begin
            let flop = space.Fault_space.flops.(fi) in
            check_bool
              (Printf.sprintf "cycle %d %s benign" cycle flop.Netlist.flop_name)
              true
              (Oracle.one_cycle_benign sim ~flop_id:flop.Netlist.flop_id)
          end)
        matrix.(cycle);
      Sim.latch sim)
    [
      [ 1; 0; 1; 1; 0 ]; [ 0; 1; 1; 0; 0 ]; [ 1; 1; 0; 1; 1 ]; [ 1; 1; 1; 1; 1 ];
      [ 0; 0; 0; 0; 0 ]; [ 1; 0; 1; 0; 1 ]; [ 0; 1; 0; 1; 0 ]; [ 1; 1; 1; 0; 0 ];
    ]

let test_selection_greedy () =
  let stimulus = List.init 16 (fun i -> [ i land 1; (i lsr 1) land 1; (i lsr 2) land 1; (i lsr 3) land 1; 0 ]) in
  let nl, _report, set, trace = seq_setup ~cycles:16 ~stimulus in
  let triggers = Replay.triggers set trace in
  let space = Fault_space.full nl ~cycles:16 in
  let ranking = Select.rank set triggers ~space in
  check_int "ranking covers all mates" (Mateset.size set) (List.length ranking);
  (* Credited hits are antitone along the ranking. *)
  let rec antitone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      check_bool "sorted desc" true (a >= b);
      antitone rest
    | [ _ ] | [] -> ()
  in
  antitone ranking;
  (* Sum of credited hits equals the union coverage of the full set. *)
  let total_credit = List.fold_left (fun acc (_, c) -> acc + c) 0 ranking in
  let matrix = Replay.masked set triggers ~space () in
  check_int "credits = union coverage" (Replay.masked_count matrix) total_credit;
  (* Top-n subsets grow monotonically in coverage. *)
  let coverage n =
    let subset = Select.top ranking ~n in
    Replay.reduction_percent set triggers ~space ~subset ()
  in
  let c1 = coverage 1 and c2 = coverage 2 and call = coverage (Mateset.size set) in
  check_bool "monotone 1<=2" true (c1 <= c2 +. 1e-9);
  check_bool "monotone 2<=all" true (c2 <= call +. 1e-9);
  check_bool "top-all = full" true (abs_float (call -. Replay.reduction_percent set triggers ~space ()) < 1e-9)

let test_effective_indices () =
  (* With an all-zero stimulus only some mates can ever trigger. *)
  let stimulus = List.init 4 (fun _ -> [ 0; 0; 0; 0; 0 ]) in
  let _nl, _report, set, trace = seq_setup ~cycles:4 ~stimulus in
  let triggers = Replay.triggers set trace in
  let effective = Replay.effective_indices triggers in
  check_bool "some effective" true (effective <> []);
  check_bool "not all effective" true (List.length effective < Mateset.size set);
  List.iter (fun i -> check_bool "has triggers" true (Replay.trigger_count triggers i > 0)) effective

let test_cost_model () =
  check_int "0 inputs" 0 (Cost.luts_for_inputs 0);
  check_int "1 input" 1 (Cost.luts_for_inputs 1);
  check_int "6 inputs" 1 (Cost.luts_for_inputs 6);
  check_int "7 inputs" 2 (Cost.luts_for_inputs 7);
  check_int "11 inputs" 2 (Cost.luts_for_inputs 11);
  check_int "12 inputs" 3 (Cost.luts_for_inputs 12);
  let nl = figure1_seq_netlist () in
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let summary = Cost.summarize set () in
  check_int "n_mates" (Mateset.size set) summary.Cost.n_mates;
  check_bool "avg sane" true (summary.Cost.avg_inputs >= 1. && summary.Cost.avg_inputs <= 4.);
  check_bool "luts at least mates" true (summary.Cost.total_luts >= Mateset.size set)

let suite =
  [
    Alcotest.test_case "term normalization" `Quick test_term_normalization;
    Alcotest.test_case "term contradiction" `Quick test_term_contradiction;
    Alcotest.test_case "term conjoin" `Quick test_term_conjoin;
    Alcotest.test_case "term holds" `Quick test_term_holds;
    Alcotest.test_case "paper fig1: MATE of d" `Quick test_search_paper_wire_d;
    Alcotest.test_case "paper fig1: e unmaskable" `Quick test_search_paper_wire_e;
    Alcotest.test_case "paper fig1: MATEs of a" `Quick test_search_paper_wire_a;
    Alcotest.test_case "output wire unmaskable" `Quick test_search_direct_output_unmaskable;
    Alcotest.test_case "depth limit" `Quick test_search_depth_limit;
    Alcotest.test_case "max terms limit" `Quick test_search_max_terms_limit;
    Alcotest.test_case "search flops on fig1-seq" `Quick test_search_flops_figure1_seq;
    Alcotest.test_case "soundness: fig1-seq exhaustive" `Quick test_soundness_figure1_seq;
    Alcotest.test_case "soundness: random netlists" `Slow test_soundness_random_netlists;
    Alcotest.test_case "mateset merging" `Quick test_mateset_merging;
    Alcotest.test_case "replay and coverage" `Quick test_replay_and_coverage;
    Alcotest.test_case "greedy selection" `Quick test_selection_greedy;
    Alcotest.test_case "effective indices" `Quick test_effective_indices;
    Alcotest.test_case "cost model" `Quick test_cost_model;
  ]
