test/test_more.ml: Alcotest Array Cell Char Fun Helpers List Netlist Printf Pruning_cpu Pruning_fi Pruning_mate Signal Sim String Trace
