test/test_waveform.ml: Alcotest Helpers List Netlist Pruning_sim Sim String Trace
