test/test_search_extra.ml: Alcotest Array Helpers List Netlist Printf Prng Pruning_fi Pruning_mate Signal Sim Synth Test_mate Trace
