test/test_polish.ml: Alcotest Cell Format Gm Helpers List Netlist Option Pruning_cpu Pruning_mate Pruning_netlist Pruning_util Signal String Synth
