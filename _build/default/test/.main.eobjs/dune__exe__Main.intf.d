test/main.mli:
