test/test_extensions.ml: Alcotest Array Cone Helpers List Netlist Printf Prng Pruning_cpu Pruning_fi Pruning_mate Signal Sim Synth Test_mate
