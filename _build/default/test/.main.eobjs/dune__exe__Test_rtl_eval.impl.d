test/test_rtl_eval.ml: Alcotest Array Helpers List Netlist Printf Prng Pruning_cpu Pruning_rtl Signal Sim Synth Trace
