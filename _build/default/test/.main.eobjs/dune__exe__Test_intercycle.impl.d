test/test_intercycle.ml: Alcotest Array Helpers Netlist Printf Prng Pruning_cpu Pruning_fi Signal Sim Synth
