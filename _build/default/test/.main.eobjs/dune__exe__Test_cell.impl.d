test/test_cell.ml: Alcotest Cell Gm Helpers List Printf String
