test/test_netlist.ml: Alcotest Array Cell Cone Filename Helpers List Netlist Option Pruning_netlist String Sys
