test/test_util.ml: Alcotest Fun Helpers List Prng Pruning_util String
