test/test_sim.ml: Alcotest Array Helpers Netlist Printf Signal Sim Synth Trace
