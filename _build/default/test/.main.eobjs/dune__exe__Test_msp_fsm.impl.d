test/test_msp_fsm.ml: Alcotest Array Helpers List Netlist Printf Pruning_cpu Sim
