test/test_properties.ml: Array Cell Fun Gm Helpers List Netlist Prng Pruning_mate Pruning_util Pruning_vcd QCheck2 QCheck_alcotest Sim Trace
