test/test_mate.ml: Alcotest Array Cell Helpers List Netlist Option Printf Prng Pruning_fi Pruning_mate Sim Trace
