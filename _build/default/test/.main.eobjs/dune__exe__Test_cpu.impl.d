test/test_cpu.ml: Alcotest Array Helpers List Netlist Printf Prng Pruning_cpu Sim
