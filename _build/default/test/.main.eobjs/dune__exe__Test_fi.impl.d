test/test_fi.ml: Alcotest Array Format Helpers Netlist Printf Prng Pruning_cpu Pruning_fi Signal Sim Synth
