test/test_vcd.ml: Alcotest Array Filename Helpers Netlist Printf Pruning_vcd Signal Sim String Synth Sys Trace
