test/helpers.ml: Alcotest Pruning_cell Pruning_netlist Pruning_rtl Pruning_sim Pruning_util
