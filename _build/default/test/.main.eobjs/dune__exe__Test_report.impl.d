test/test_report.ml: Alcotest Helpers Lazy List Printf Pruning_mate Pruning_report Pruning_util String
