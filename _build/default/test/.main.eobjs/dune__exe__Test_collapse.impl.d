test/test_collapse.ml: Alcotest Array Cell Helpers List Netlist Pruning_cpu Pruning_netlist
