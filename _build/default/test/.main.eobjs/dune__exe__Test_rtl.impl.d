test/test_rtl.ml: Alcotest Array Cell Helpers List Netlist Printf Prng Signal Sim Synth
