open Helpers

let eval_kind kind pins = Cell.eval (Cell.of_kind kind) pins

let test_truth_tables () =
  check_bool "AND2 11" true (eval_kind Cell.AND2 [| true; true |]);
  check_bool "AND2 10" false (eval_kind Cell.AND2 [| true; false |]);
  check_bool "NAND2 11" false (eval_kind Cell.NAND2 [| true; true |]);
  check_bool "NAND2 00" true (eval_kind Cell.NAND2 [| false; false |]);
  check_bool "OR2 00" false (eval_kind Cell.OR2 [| false; false |]);
  check_bool "NOR2 00" true (eval_kind Cell.NOR2 [| false; false |]);
  check_bool "XOR2 10" true (eval_kind Cell.XOR2 [| true; false |]);
  check_bool "XNOR2 10" false (eval_kind Cell.XNOR2 [| true; false |]);
  check_bool "INV 0" true (eval_kind Cell.INV [| false |]);
  check_bool "BUF 1" true (eval_kind Cell.BUF [| true |]);
  check_bool "TIEL" false (eval_kind Cell.TIEL [||]);
  check_bool "TIEH" true (eval_kind Cell.TIEH [||])

let test_mux_semantics () =
  (* MUX2 pins (a, b, s): s ? b : a *)
  check_bool "mux s=0 -> a" true (eval_kind Cell.MUX2 [| true; false; false |]);
  check_bool "mux s=1 -> b" false (eval_kind Cell.MUX2 [| true; false; true |]);
  check_bool "mux s=1 -> b'" true (eval_kind Cell.MUX2 [| false; true; true |])

let test_complex_cells () =
  (* AOI21 (a1, a2, b) = !((a1 && a2) || b) *)
  check_bool "aoi21 110" false (eval_kind Cell.AOI21 [| true; true; false |]);
  check_bool "aoi21 100" true (eval_kind Cell.AOI21 [| true; false; false |]);
  check_bool "aoi21 001" false (eval_kind Cell.AOI21 [| false; false; true |]);
  (* OAI22 (a1, a2, b1, b2) = !((a1 || a2) && (b1 || b2)) *)
  check_bool "oai22 1010" false (eval_kind Cell.OAI22 [| true; false; true; false |]);
  check_bool "oai22 0010" true (eval_kind Cell.OAI22 [| false; false; true; false |]);
  (* Full-adder decomposition *)
  check_bool "xor3 111" true (eval_kind Cell.XOR3 [| true; true; true |]);
  check_bool "xor3 110" false (eval_kind Cell.XOR3 [| true; true; false |]);
  check_bool "maj3 110" true (eval_kind Cell.MAJ3 [| true; true; false |]);
  check_bool "maj3 100" false (eval_kind Cell.MAJ3 [| true; false; false |])

let test_catalogue () =
  check_int "catalogue size" 25 (List.length Cell.all);
  List.iter
    (fun (c : Cell.t) ->
      check_bool ("find " ^ c.Cell.name) true
        (match Cell.find_by_name c.Cell.name with
        | Some c' -> Cell.equal c c'
        | None -> false))
    Cell.all;
  check_bool "unknown cell" true (Cell.find_by_name "FOO_X1" = None)

let test_eval_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Cell.eval AND2_X1: expected 2 pins, got 3") (fun () ->
      ignore (eval_kind Cell.AND2 [| true; true; true |]))

let sort_terms terms =
  List.sort compare
    (List.map (List.map (fun (l : Gm.literal) -> (l.Gm.pin, l.Gm.value))) terms)

let gm kind faulty = sort_terms (Gm.masking_terms (Cell.of_kind kind) ~faulty)

let test_gm_paper_mux_example () =
  (* The paper: GM(MUX(x,a,b), {x}) = {(!a & !b), (a & b)}; our pin order
     is (a, b, s) so the faulty select is pin 2. *)
  Alcotest.(check (list (list (pair int bool))))
    "mux faulty select"
    [ [ (0, false); (1, false) ]; [ (0, true); (1, true) ] ]
    (gm Cell.MUX2 [ 2 ])

let test_gm_basic_gates () =
  Alcotest.(check (list (list (pair int bool))))
    "and2 faulty a" [ [ (1, false) ] ] (gm Cell.AND2 [ 0 ]);
  Alcotest.(check (list (list (pair int bool))))
    "or2 faulty b" [ [ (0, true) ] ] (gm Cell.OR2 [ 1 ]);
  Alcotest.(check (list (list (pair int bool))))
    "nand3 faulty a" [ [ (1, false) ]; [ (2, false) ] ] (gm Cell.NAND3 [ 0 ]);
  Alcotest.(check (list (list (pair int bool)))) "xor2 has no masking" [] (gm Cell.XOR2 [ 0 ]);
  Alcotest.(check (list (list (pair int bool)))) "xor3 has no masking" [] (gm Cell.XOR3 [ 1 ]);
  Alcotest.(check (list (list (pair int bool)))) "inv has no masking" [] (gm Cell.INV [ 0 ]);
  Alcotest.(check (list (list (pair int bool)))) "buf has no masking" [] (gm Cell.BUF [ 0 ])

let test_gm_complex_gates () =
  Alcotest.(check (list (list (pair int bool))))
    "aoi21 faulty a1"
    [ [ (1, false) ]; [ (2, true) ] ]
    (gm Cell.AOI21 [ 0 ]);
  Alcotest.(check (list (list (pair int bool))))
    "maj3 faulty a"
    [ [ (1, false); (2, false) ]; [ (1, true); (2, true) ] ]
    (gm Cell.MAJ3 [ 0 ]);
  (* Data-input fault on a mux is masked by selecting the other input. *)
  Alcotest.(check (list (list (pair int bool)))) "mux faulty a" [ [ (2, true) ] ] (gm Cell.MUX2 [ 0 ]);
  Alcotest.(check (list (list (pair int bool))))
    "mux faulty b" [ [ (2, false) ] ] (gm Cell.MUX2 [ 1 ])

let test_gm_multi_fault () =
  (* Both data pins faulty: the mux output is faulty whichever way the
     select goes. *)
  Alcotest.(check (list (list (pair int bool)))) "mux both data" [] (gm Cell.MUX2 [ 0; 1 ]);
  (* Data+select faulty: never maskable. *)
  Alcotest.(check (list (list (pair int bool)))) "mux a+s" [] (gm Cell.MUX2 [ 0; 2 ]);
  Alcotest.(check (list (list (pair int bool))))
    "nand4 two faulty"
    [ [ (2, false) ]; [ (3, false) ] ]
    (gm Cell.NAND4 [ 0; 1 ]);
  Alcotest.(check (list (list (pair int bool)))) "and2 both" [] (gm Cell.AND2 [ 0; 1 ])

let test_gm_invalid () =
  let cell = Cell.of_kind Cell.AND2 in
  Alcotest.check_raises "empty faulty" (Invalid_argument "Gm: empty faulty set") (fun () ->
      ignore (Gm.masking_terms cell ~faulty:[]));
  Alcotest.check_raises "dup faulty" (Invalid_argument "Gm: duplicate faulty pin") (fun () ->
      ignore (Gm.masking_terms cell ~faulty:[ 0; 0 ]));
  Alcotest.check_raises "pin range" (Invalid_argument "Gm: pin 5 outside AND2_X1") (fun () ->
      ignore (Gm.masking_terms cell ~faulty:[ 5 ]))

(* Exhaustive semantic check of the GM computation for every cell and every
   faulty subset: a full trusted assignment masks iff it is subsumed by a
   returned term, and every returned term is minimal. *)
let subsets n =
  let rec go = function
    | 0 -> [ [] ]
    | k ->
      let rest = go (k - 1) in
      rest @ List.map (fun s -> (k - 1) :: s) rest
  in
  go n |> List.filter (fun s -> s <> [])

let full_assignment_masks (cell : Cell.t) fmask assignment =
  (* assignment covers all trusted pins *)
  let masked = ref true in
  for s = 0 to (1 lsl cell.Cell.arity) - 1 do
    if s land lnot fmask = 0 then
      if Cell.eval_pattern cell (assignment lor s) <> Cell.eval_pattern cell assignment then
        masked := false
  done;
  !masked

let term_subsumes (term : Gm.term) assignment =
  List.for_all
    (fun (l : Gm.literal) -> assignment land (1 lsl l.Gm.pin) <> 0 = l.Gm.value)
    term

let test_gm_exhaustive () =
  List.iter
    (fun (cell : Cell.t) ->
      if cell.Cell.arity > 0 then
        List.iter
          (fun faulty ->
            let fmask = List.fold_left (fun m p -> m lor (1 lsl p)) 0 faulty in
            let terms = Gm.masking_terms cell ~faulty in
            (* Soundness + minimality of each term. *)
            List.iter
              (fun term ->
                check_bool
                  (Printf.sprintf "%s sound" cell.Cell.name)
                  true
                  (Gm.masks cell ~faulty term);
                List.iteri
                  (fun i _ ->
                    let weaker = List.filteri (fun j _ -> j <> i) term in
                    check_bool
                      (Printf.sprintf "%s minimal" cell.Cell.name)
                      false
                      (Gm.masks cell ~faulty weaker))
                  term)
              terms;
            (* Completeness over full trusted assignments. *)
            let tmask = ((1 lsl cell.Cell.arity) - 1) land lnot fmask in
            for a = 0 to (1 lsl cell.Cell.arity) - 1 do
              if a land lnot tmask = 0 then begin
                let masks_now = full_assignment_masks cell fmask a in
                let covered = List.exists (fun t -> term_subsumes t a) terms in
                check_bool
                  (Printf.sprintf "%s complete (faulty=%s, a=%d)" cell.Cell.name
                     (String.concat "," (List.map string_of_int faulty))
                     a)
                  masks_now covered
              end
            done)
          (subsets cell.Cell.arity))
    Cell.all

let test_gm_memoized () =
  let cell = Cell.of_kind Cell.MUX2 in
  let a = Gm.memoized_masking_terms cell ~faulty:[ 2 ] in
  let b = Gm.memoized_masking_terms cell ~faulty:[ 2 ] in
  check_bool "memoized results equal" true (a == b);
  check_bool "matches direct" true (sort_terms a = sort_terms (Gm.masking_terms cell ~faulty:[ 2 ]))

let test_term_to_string () =
  let cell = Cell.of_kind Cell.MUX2 in
  match Gm.masking_terms cell ~faulty:[ 0 ] with
  | [ term ] -> check_string "render" "(a3)" (Gm.term_to_string cell term)
  | _ -> Alcotest.fail "expected one term"

let suite =
  [
    Alcotest.test_case "truth tables" `Quick test_truth_tables;
    Alcotest.test_case "mux semantics" `Quick test_mux_semantics;
    Alcotest.test_case "complex cells" `Quick test_complex_cells;
    Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "eval arity check" `Quick test_eval_arity_check;
    Alcotest.test_case "gm paper mux example" `Quick test_gm_paper_mux_example;
    Alcotest.test_case "gm basic gates" `Quick test_gm_basic_gates;
    Alcotest.test_case "gm complex gates" `Quick test_gm_complex_gates;
    Alcotest.test_case "gm multi fault" `Quick test_gm_multi_fault;
    Alcotest.test_case "gm invalid input" `Quick test_gm_invalid;
    Alcotest.test_case "gm exhaustive semantics" `Quick test_gm_exhaustive;
    Alcotest.test_case "gm memoized" `Quick test_gm_memoized;
    Alcotest.test_case "term rendering" `Quick test_term_to_string;
  ]
