(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the core
   primitives.

   Usage: dune exec bench/main.exe -- [all|table1|table2|table3|figures|
                                       cost|ablation|campaign|perf|micro]
                                      [--quick] [--smoke]

   Experiment index (see DESIGN.md):
     T1  table1    MATE-search statistics per core and fault set
     T2  table2    AVR MATE performance (complete set + top-N + transfer)
     T3  table3    MSP430 MATE performance
     F1a/F1b       the example circuit's cone/MATEs and pruning matrix
     D1  cost      FPGA LUT cost of MATE sets (Section 6.1)
     A1  ablation  heuristic-parameter sweep (depth / terms / seeding)
     C1  campaign  sampled HAFI campaign with and without pruning *)

module Netlist = Pruning_netlist.Netlist
module Cone = Pruning_netlist.Cone
module Cell = Pruning_cell.Cell
module Gm = Pruning_cell.Gm
module Sim = Pruning_sim.Sim
module Trace = Pruning_sim.Trace
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Programs = Pruning_cpu.Programs
module Fault_space = Pruning_fi.Fault_space
module Fault_model = Pruning_fi.Fault_model
module Campaign = Pruning_fi.Campaign
module Intercycle = Pruning_fi.Intercycle
module Coordinator = Pruning_fi.Coordinator
module Worker = Pruning_fi.Worker
module Fi_journal = Pruning_fi.Journal
module Chaos = Pruning_fi.Chaos
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Experiments = Pruning_report.Experiments
module Figure1 = Pruning_report.Figure1
module Table = Pruning_util.Table
module Prng = Pruning_util.Prng
module Mono = Pruning_util.Mono

let quick = Array.exists (( = ) "--quick") Sys.argv
let smoke = Array.exists (( = ) "--smoke") Sys.argv

let mode =
  let named =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--quick" && a <> "--smoke")
  in
  match named with
  | [] -> "all"
  | m :: _ -> m

let cycles = if quick then 1500 else 8500
let params =
  if quick then
    { Search.default_params with Search.max_candidates = 400; max_situations = 6 }
  else Search.default_params

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* prepare is expensive; memoize per core. *)
let prepared_avr = ref None
let prepared_msp = ref None

let get_prepared which =
  let cache, setup_fn, label =
    match which with
    | `Avr -> (prepared_avr, Experiments.avr_setup, "AVR")
    | `Msp -> (prepared_msp, Experiments.msp_setup, "MSP430")
  in
  match !cache with
  | Some p -> p
  | None ->
    Printf.printf "[preparing %s: synthesis, %d-cycle traces, MATE search...]\n%!" label cycles;
    let t0 = Mono.now () in
    let p = Experiments.prepare ~params ~cycles (setup_fn ()) in
    Printf.printf "[%s prepared in %.1fs]\n%!" label (Mono.now () -. t0);
    cache := Some p;
    p

let run_table1 () =
  section "Table 1: Statistic for the heuristic MATE search";
  let avr = get_prepared `Avr and msp = get_prepared `Msp in
  Table.print (Experiments.table1 [ avr; msp ])

let run_table2 () =
  section "Table 2: AVR MATE performance";
  Table.print (Experiments.table23 (get_prepared `Avr))

let run_table3 () =
  section "Table 3: MSP430 MATE performance";
  Table.print (Experiments.table23 (get_prepared `Msp))

let run_figures () =
  section "Figure 1a: fault cone and MATEs of the example circuit";
  print_string (Figure1.render_figure1a ());
  section "Figure 1b: fault-space pruning over 8 cycles";
  print_string (Figure1.render_figure1b ())

let run_cost () =
  section "Section 6.1: MATE hardware cost (FPGA LUTs)";
  let avr = get_prepared `Avr in
  Table.print ~title:"AVR MATE sets" (Experiments.mate_cost_table avr);
  let msp = get_prepared `Msp in
  Table.print ~title:"MSP430 MATE sets" (Experiments.mate_cost_table msp)

(* Ablation: how the heuristic knobs trade fault-space reduction against
   search effort, on the AVR non-RF fault set. *)
let run_ablation () =
  section "Ablation: heuristic parameters (AVR, FF w/o RF, fib trace)";
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let sys = System.create_avr ~netlist:nl ~program "avr/fib" in
  let trace = System.record sys ~cycles in
  let flops = Netlist.flops_excluding nl ~prefix:"rf_" in
  let space = Fault_space.without_prefix nl ~prefix:"rf_" ~cycles in
  let t = Table.create [ "depth"; "max terms"; "seeded"; "MATEs"; "masked"; "time [s]" ] in
  let variants =
    [
      (2, 4, false); (2, 4, true); (8, 4, true); (8, 8, false); (8, 8, true);
    ]
  in
  List.iter
    (fun (depth, max_terms, seeded) ->
      let p = { params with Search.depth; max_terms } in
      let traces = if seeded then Some [ trace ] else None in
      let report = Search.search_flops ~params:p ?traces nl flops in
      let set = Mateset.of_report report in
      let triggers = Replay.triggers set trace in
      Table.add_row t
        [
          string_of_int depth;
          string_of_int max_terms;
          (if seeded then "yes" else "no");
          string_of_int (Mateset.size set);
          Printf.sprintf "%.2f%%" (Replay.reduction_percent set triggers ~space ());
          Printf.sprintf "%.1f" report.Search.runtime_s;
        ])
    variants;
  Table.print t

let run_campaign () =
  section "HAFI campaign: experiments avoided by online pruning (AVR/fib)";
  let horizon = if quick then 200 else 400 in
  let samples = if quick then 120 else 300 in
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let make () = System.create_avr ~netlist:nl ~program "avr/fib" in
  let space = Fault_space.full nl ~cycles:horizon in
  let campaign = Campaign.create ~make ~total_cycles:horizon () in
  let plain = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:samples () in
  let trace = System.record (make ()) ~cycles:horizon in
  let report = Search.search_flops ~params ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let triggers = Replay.triggers set trace in
  let matrix = Replay.masked set triggers ~space () in
  (* A flop outside the fault space cannot be pruned — but it is a
     stale-fault-list symptom worth surfacing, not a silent "inject". *)
  let unknown_flops = ref 0 in
  let skip ~flop_id ~cycle =
    match Fault_space.flop_index space flop_id with
    | Some fi -> matrix.(cycle).(fi)
    | None ->
      incr unknown_flops;
      false
  in
  let pruned = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:samples ~skip () in
  if !unknown_flops > 0 then
    Printf.printf
      "warning: %d prune lookups named flops outside the fault space (injected, not pruned)\n"
      !unknown_flops;
  let t = Table.create [ "campaign"; "injections"; "skipped"; "benign"; "latent"; "SDC" ] in
  let row label (s : Campaign.stats) =
    Table.add_row t
      [
        label; string_of_int s.Campaign.injections; string_of_int s.Campaign.skipped;
        string_of_int s.Campaign.benign; string_of_int s.Campaign.latent;
        string_of_int s.Campaign.sdc;
      ]
  in
  row "plain" plain;
  row "MATE-pruned" pruned;
  Table.print t;
  Printf.printf "experiments avoided: %d of %d (executed verdicts stay sound)\n"
    pruned.Campaign.skipped plain.Campaign.injections;
  (* Complementary inter-cycle equivalence on a register-file slice. *)
  let rf_slice = Array.of_list (Netlist.flops_matching nl ~prefix:"rf_1") in
  let sys = make () in
  let classes = Intercycle.compute sys.System.sim ~flops:rf_slice ~cycles:horizon in
  Printf.printf
    "inter-cycle equivalence (rf_1x slice): %d faults -> %d classes (%.1fx fewer experiments)\n"
    (Intercycle.n_faults classes) classes.Intercycle.n_classes
    (Intercycle.reduction_factor classes)

(* Campaign-engine throughput: from-scratch re-simulation (checkpointing
   effectively disabled with an interval beyond the horizon) vs the
   checkpointed engine, single-domain and multi-domain, vs the wide and
   delta engines. The headline number: injections/second.

   Every engine's run is split into a setup phase (campaign creation —
   the golden run with its checkpoints — plus, where it can be forced
   up front, golden-trace recording and worker construction) and the
   injection phase proper; both halves land in BENCH_campaign.json,
   together with per-engine GC allocation (minor/major words) measured
   around the injection phase. *)
let run_perf () =
  section "Campaign engine performance (AVR/fib, full fault space)";
  let horizon = if smoke then 300 else if quick then 800 else 2000 in
  let samples = if smoke then 40 else if quick then 200 else 2000 in
  let base_samples = max 10 (samples / 20) in
  let jobs = 4 in
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let make () = System.create_avr ~netlist:nl ~program "avr/fib" in
  let make_lanes () = System.create_avr_lanes ~netlist:nl ~program "avr/fib" in
  let make_delta ~trace = System.create_avr_delta ~netlist:nl ~program ~trace "avr/fib" in
  let make_delta_batch ~trace =
    System.create_avr_delta_batch ~netlist:nl ~program ~trace "avr/fib"
  in
  let space = Fault_space.full nl ~cycles:horizon in
  Printf.printf "fault space: %d flops x %d cycles; %d samples (baseline %d)\n%!"
    (Array.length space.Fault_space.flops) horizon samples base_samples;
  let time f =
    let t0 = Mono.now () in
    let r = f () in
    (r, Mono.now () -. t0)
  in
  (* One engine measurement: [setup] builds the campaign (and forces
     whatever golden recording / worker construction the engine allows
     up front), [inject] classifies the sample; GC allocation deltas are
     read around the injection phase only. *)
  let measure ~setup ~inject =
    let campaign, setup_t = time setup in
    let g0 = Gc.quick_stat () in
    let stats, inject_t = time (fun () -> inject campaign) in
    let g1 = Gc.quick_stat () in
    ( stats,
      setup_t,
      inject_t,
      g1.Gc.minor_words -. g0.Gc.minor_words,
      g1.Gc.major_words -. g0.Gc.major_words )
  in
  let rng () = Prng.create 11 in
  let bstats, bsu, bt, bmin, bmaj =
    measure
      ~setup:(fun () ->
        Campaign.create ~checkpoint_interval:(horizon + 1) ~make ~total_cycles:horizon ())
      ~inject:(fun c -> Campaign.run_sample c ~space ~rng:(rng ()) ~n:base_samples ())
  in
  let interval = ref 0 in
  let cstats, csu, ct, cmin, cmaj =
    measure
      ~setup:(fun () ->
        let c = Campaign.create ~make ~total_cycles:horizon () in
        interval := Campaign.checkpoint_interval c;
        c)
      ~inject:(fun c -> Campaign.run_sample c ~space ~rng:(rng ()) ~n:samples ())
  in
  (* A cold campaign per engine so no verdict memo is pre-warmed by an
     earlier row. *)
  let pstats, psu, pt, pmin, pmaj =
    measure
      ~setup:(fun () -> Campaign.create ~make ~total_cycles:horizon ())
      ~inject:(fun c -> Campaign.run_sample c ~space ~rng:(rng ()) ~n:samples ~jobs ())
  in
  (* Lane-parallel (PPSFP) engine: an empty batch forces the lane worker
     (and its checkpoint replay) into the setup phase. *)
  let lstats, lsu, lt, lmin, lmaj =
    measure
      ~setup:(fun () ->
        let c = Campaign.create ~make ~make_lanes ~total_cycles:horizon () in
        ignore (Campaign.inject_batch c ~faults:[||] ());
        c)
      ~inject:(fun c -> Campaign.run_sample_batched c ~space ~rng:(rng ()) ~n:samples ())
  in
  (* Activity-gated delta engine: the golden-trace recording is forced
     into the setup phase; the (cheap) delta worker build remains in the
     first injection. *)
  let dstats, dsu, dt, dmin, dmaj =
    measure
      ~setup:(fun () ->
        let c = Campaign.create ~make ~make_delta ~total_cycles:horizon () in
        ignore (Campaign.golden_trace c);
        c)
      ~inject:(fun c -> Campaign.run_sample_delta c ~space ~rng:(rng ()) ~n:samples ())
  in
  (* Batched delta engine: golden recording and worker construction both
     forced into the setup phase (an empty pack builds the worker). *)
  let dbstats, dbsu, dbt, dbmin, dbmaj =
    measure
      ~setup:(fun () ->
        let c = Campaign.create ~make ~make_delta_batch ~total_cycles:horizon () in
        ignore (Campaign.golden_trace c);
        ignore (Campaign.inject_delta_batch c ~faults:[||] ());
        c)
      ~inject:(fun c -> Campaign.run_sample_delta_batched c ~space ~rng:(rng ()) ~n:samples ())
  in
  let rate (s : Campaign.stats) elapsed = float_of_int s.Campaign.injections /. max 1e-9 elapsed in
  let t =
    Table.create
      [ "engine"; "injections"; "setup [s]"; "inject [s]"; "inj/s"; "speedup"; "minor Mw"; "major Mw" ]
  in
  let base_rate = rate bstats bt in
  let json_rows = ref [] in
  let row ?(key = "") label stats setup_t inject_t minor major =
    if key <> "" then json_rows := (key, stats, setup_t, inject_t, minor, major) :: !json_rows;
    Table.add_row t
      [
        label;
        string_of_int stats.Campaign.injections;
        Printf.sprintf "%.2f" setup_t;
        Printf.sprintf "%.2f" inject_t;
        Printf.sprintf "%.1f" (rate stats inject_t);
        Printf.sprintf "%.1fx" (rate stats inject_t /. base_rate);
        Printf.sprintf "%.1f" (minor /. 1e6);
        Printf.sprintf "%.1f" (major /. 1e6);
      ]
  in
  row ~key:"from-scratch" "from-scratch (seed engine)" bstats bsu bt bmin bmaj;
  row ~key:"scalar" (Printf.sprintf "checkpointed (K=%d, 1 domain)" !interval) cstats csu ct cmin
    cmaj;
  row (Printf.sprintf "checkpointed (K=%d, %d domains)" !interval jobs) pstats psu pt pmin pmaj;
  row ~key:"batched"
    (Printf.sprintf "bit-parallel (%d lanes, K=%d, 1 domain)" Campaign.max_fault_lanes !interval)
    lstats lsu lt lmin lmaj;
  row ~key:"delta" "delta (activity-gated, 1 domain)" dstats dsu dt dmin dmaj;
  row ~key:"delta-batched"
    (Printf.sprintf "batched delta (%d lanes, 1 domain)" Campaign.max_delta_lanes)
    dbstats dbsu dbt dbmin dbmaj;
  Table.print t;
  (* All engines share the seed: identical sample list, so identical
     stats regardless of domain count or kernel. *)
  assert (cstats = pstats);
  assert (cstats = lstats);
  assert (cstats = dstats);
  assert (cstats = dbstats);
  Printf.printf "single-domain speedup over from-scratch: %.1fx\n" (rate cstats ct /. base_rate);
  Printf.printf "bit-parallel speedup over checkpointed single-domain: %.1fx\n"
    (rate lstats lt /. rate cstats ct);
  Printf.printf "delta speedup over bit-parallel: %.2fx (%.1f vs %.1f inj/s)\n"
    (rate dstats dt /. rate lstats lt) (rate dstats dt) (rate lstats lt);
  Printf.printf "batched delta over its parents: %.2fx vs bit-parallel, %.2fx vs delta (%.1f inj/s)\n"
    (rate dbstats dbt /. rate lstats lt)
    (rate dbstats dbt /. rate dstats dt)
    (rate dbstats dbt);
  Printf.printf "(multi-domain wall clock scales with physical cores; this host has %d)\n"
    (Domain.recommended_domain_count ());
  (* Fault-model dimension: scalar vs delta rates per model at a reduced
     sample count (multi-flop / multi-cycle faults cost more per sample,
     and the wide engines fall back to these two anyway). *)
  let model_samples = max 10 (samples / 10) in
  let models = [ Fault_model.Seu; Fault_model.Set; Fault_model.Mbu 2; Fault_model.Intermittent 3 ] in
  let model_rows =
    List.map
      (fun model ->
        let mspace = Fault_space.full ~model nl ~cycles:horizon in
        let sstats, _, st, _, _ =
          measure
            ~setup:(fun () -> Campaign.create ~make ~total_cycles:horizon ())
            ~inject:(fun c ->
              Campaign.run_sample c ~space:mspace ~rng:(rng ()) ~n:model_samples ())
        in
        let mstats, _, mt, _, _ =
          measure
            ~setup:(fun () ->
              let c = Campaign.create ~make ~make_delta ~total_cycles:horizon () in
              ignore (Campaign.golden_trace c);
              c)
            ~inject:(fun c ->
              Campaign.run_sample_delta c ~space:mspace ~rng:(rng ()) ~n:model_samples ())
        in
        (Fault_model.name model, sstats, st, mstats, mt))
      models
  in
  let mt_table = Table.create [ "model"; "injections"; "scalar inj/s"; "delta inj/s" ] in
  List.iter
    (fun (name, (sstats : Campaign.stats), st, mstats, mt) ->
      Table.add_row mt_table
        [
          name;
          string_of_int sstats.Campaign.injections;
          Printf.sprintf "%.1f" (rate sstats st);
          Printf.sprintf "%.1f" (rate mstats mt);
        ])
    model_rows;
  Printf.printf "\nfault-model dimension (%d samples each):\n" model_samples;
  Table.print mt_table;
  (* Byzantine dimension: what quorum arbitration costs end to end. The
     same three-worker fleet (scalar engines, one deterministic liar)
     runs the campaign twice over loopback: once with verification off,
     once with a 5% cross-validation draw and quorum-3 arbitration
     catching the liar. Engines are built before the clock starts, so
     the rates compare distribution + arbitration, not golden runs. *)
  let byz_workers = 3 in
  let byz_header =
    {
      Fi_journal.core = "avr";
      program = "fib";
      cycles = horizon;
      seed = 11;
      samples;
      prune = false;
      audit = 0.;
      shards = 0;
      batched = false;
      epoch = 0;
      fault_model = Fault_model.Seu;
      prng = Prng.save (Prng.create 11);
      shard_prng = [||];
    }
  in
  let run_dist ~verify_frac ~liar =
    let engines =
      Array.init byz_workers (fun _ ->
          {
            Worker.campaign = Campaign.create ~make ~total_cycles:horizon ();
            space;
            skip = None;
            kernel = Campaign.Scalar;
          })
    in
    let config =
      {
        Coordinator.default_config with
        Coordinator.chunk_size = max 4 (samples / 64);
        tick = 0.002;
        verify_frac;
        quorum = 3;
      }
    in
    let coord = Coordinator.create ~config () in
    let port = Coordinator.port coord in
    let result = ref None in
    let t0 = Mono.now () in
    let ct =
      Thread.create (fun () -> result := Some (Coordinator.serve coord ~header:byz_header ())) ()
    in
    let ws =
      List.init byz_workers (fun i ->
          let chaos =
            if liar && i = byz_workers - 1 then
              Some (Chaos.create ~profile:Chaos.liar_profile ~seed:7 ())
            else None
          in
          let name = if chaos = None then Printf.sprintf "honest-%d" i else "liar" in
          Thread.create
            (fun () ->
              try
                ignore
                  (Worker.run ~host:"127.0.0.1" ~port
                     ~resolve:(fun _ -> engines.(i))
                     ~name ?chaos ())
              with _ -> ())
            ())
    in
    Thread.join ct;
    let elapsed = Mono.now () -. t0 in
    List.iter Thread.join ws;
    (Option.get !result, elapsed)
  in
  let byz_base, byz_base_t = run_dist ~verify_frac:0. ~liar:true in
  let byz_arb, byz_arb_t = run_dist ~verify_frac:0.05 ~liar:true in
  let byz_base_rate = rate byz_base.Coordinator.stats byz_base_t in
  let byz_arb_rate = rate byz_arb.Coordinator.stats byz_arb_t in
  let byz_overhead = 100. *. (1. -. (byz_arb_rate /. max 1e-9 byz_base_rate)) in
  Printf.printf
    "\nbyzantine dimension (%d workers incl. one liar, %d samples over loopback):\n" byz_workers
    samples;
  Printf.printf "  no verification:              %.1f inj/s\n" byz_base_rate;
  Printf.printf
    "  --verify-frac 0.05 --quorum 3: %.1f inj/s (%.1f%% overhead; %d disputes, %d resolved, %d \
     overturned)\n"
    byz_arb_rate byz_overhead byz_arb.Coordinator.mismatches byz_arb.Coordinator.arb_resolved
    byz_arb.Coordinator.arb_overturned;
  (* Machine-readable record for CI trend tracking; hand-rolled JSON so
     the harness needs no extra dependency. *)
  let json_path = "BENCH_campaign.json" in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"campaign-engines\",\n  \"core\": \"avr\",\n  \"program\": \"fib\",\n\
    \  \"horizon_cycles\": %d,\n  \"samples\": %d,\n  \"engines\": [\n"
    horizon samples;
  let rows = List.rev !json_rows in
  List.iteri
    (fun i (key, (s : Campaign.stats), setup_t, inject_t, minor, major) ->
      Printf.fprintf oc
        "    { \"engine\": %S, \"injections\": %d, \"setup_seconds\": %.3f, \"seconds\": %.3f, \
         \"inj_per_s\": %.1f, \"gc_minor_words\": %.0f, \"gc_major_words\": %.0f }%s\n"
        key s.Campaign.injections setup_t inject_t (rate s inject_t) minor major
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"fault_models\": [\n";
  List.iteri
    (fun i (name, (sstats : Campaign.stats), st, (mstats : Campaign.stats), mt) ->
      Printf.fprintf oc
        "    { \"model\": %S, \"samples\": %d, \"scalar_injections\": %d, \
         \"scalar_inj_per_s\": %.1f, \"delta_injections\": %d, \"delta_inj_per_s\": %.1f }%s\n"
        name model_samples sstats.Campaign.injections (rate sstats st) mstats.Campaign.injections
        (rate mstats mt)
        (if i = List.length model_rows - 1 then "" else ","))
    model_rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"byzantine\": { \"workers\": %d, \"liars\": 1, \"samples\": %d, \"verify_frac\": 0.05, \
     \"quorum\": 3,\n\
    \    \"baseline_inj_per_s\": %.1f, \"arbitrated_inj_per_s\": %.1f, \"overhead_pct\": %.1f,\n\
    \    \"disputes\": %d, \"resolved\": %d, \"overturned\": %d, \"unresolved\": %d }\n"
    byz_workers samples byz_base_rate byz_arb_rate byz_overhead byz_arb.Coordinator.mismatches
    byz_arb.Coordinator.arb_resolved byz_arb.Coordinator.arb_overturned
    byz_arb.Coordinator.arb_unresolved;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "[wrote %s]\n" json_path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks, including one Test per paper table at a
   strongly reduced scale (the full-scale tables are printed above; these
   measure the cost of regenerating them). *)

let micro_tests () =
  let open Bechamel in
  let nl = System.avr_netlist () in
  let some_flop = (Netlist.find_flop nl "sreg[1]").Netlist.flop_id in
  let q_wire = nl.Netlist.flops.(some_flop).Netlist.q in
  let mux2 = Cell.of_kind Cell.MUX2 in
  let sys = System.create_avr ~netlist:nl ~program:(Avr_asm.assemble Programs.avr_fib) "avr/fib" in
  let tiny = { Search.default_params with Search.max_candidates = 50; max_situations = 2 } in
  let tiny_cycles = 120 in
  let tiny_trace = System.record (System.create_avr ~netlist:nl ~program:(Avr_asm.assemble Programs.avr_fib) "t") ~cycles:tiny_cycles in
  let tiny_set =
    Mateset.of_report
      (Search.search_flops ~params:tiny ~traces:[ tiny_trace ] nl
         (Netlist.flops_excluding nl ~prefix:"rf_"))
  in
  [
    Test.make ~name:"cone/avr-flop" (Staged.stage (fun () -> Cone.compute nl q_wire));
    Test.make ~name:"gm/mux2-select"
      (Staged.stage (fun () -> Gm.masking_terms mux2 ~faulty:[ 2 ]));
    Test.make ~name:"sim/avr-cycle" (Staged.stage (fun () -> Sim.step sys.System.sim ()));
    Test.make ~name:"search/one-wire"
      (Staged.stage (fun () -> Search.search_wire nl tiny q_wire));
    Test.make ~name:"table1/tiny"
      (Staged.stage (fun () ->
           Search.search_flops ~params:tiny nl
             (Netlist.flops_excluding nl ~prefix:"rf_")));
    Test.make ~name:"table23/tiny-replay"
      (Staged.stage (fun () -> Replay.triggers tiny_set tiny_trace));
    Test.make ~name:"figure1b/full" (Staged.stage (fun () -> Figure1.render_figure1b ()));
  ]

let run_micro () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let tests = Test.make_grouped ~name:"pruning" (micro_tests ()) in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t = Table.create [ "benchmark"; "time/run" ] in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let human =
        if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
        else Printf.sprintf "%.0f ns" estimate
      in
      Table.add_row t [ name; human ])
    (List.sort compare rows);
  Table.print t

let () =
  Printf.printf "pruning benchmark harness (mode: %s%s)\n" mode (if quick then ", quick" else "");
  (match mode with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "table3" -> run_table3 ()
  | "figures" | "figure1a" | "figure1b" -> run_figures ()
  | "cost" -> run_cost ()
  | "ablation" -> run_ablation ()
  | "campaign" -> run_campaign ()
  | "perf" -> run_perf ()
  | "micro" -> run_micro ()
  | "all" ->
    run_figures ();
    run_table1 ();
    run_table2 ();
    run_table3 ();
    run_cost ();
    run_ablation ();
    run_campaign ();
    run_perf ();
    run_micro ()
  | other ->
    Printf.eprintf "unknown mode %s\n" other;
    exit 1);
  print_newline ()
