(* campaign: sampled end-to-end fault-injection campaign on a built-in
   core/program, with and without MATE-based fault-space pruning — the
   HAFI use case of the paper, emulated in the simulator.

   Long campaigns are survivable: --journal streams every verdict into a
   crash-safe CRC-checksummed journal, --resume picks a killed campaign
   up where the journal ends (bit-identical final stats), --watchdog and
   the supervisor's retries contain runaway or crashing experiments, and
   --audit cross-checks the MATE pruner by actually injecting a fraction
   of the "pruned" faults.

   Campaigns also distribute: `campaign serve` runs the fault-tolerant
   coordinator (sharding, leases, journal, dedup) and `campaign work
   HOST:PORT` runs any number of stateless workers against it; final
   statistics are bit-identical to a single-process run with the same
   seed no matter how many workers join, die, or straggle. *)

module Netlist = Pruning_netlist.Netlist
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Fi_campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module Fault_model = Pruning_fi.Fault_model
module Durable = Pruning_fi.Durable
module Journal = Pruning_fi.Journal
module Coordinator = Pruning_fi.Coordinator
module Worker = Pruning_fi.Worker
module Supervisor = Pruning_fi.Supervisor
module Proto = Pruning_fi.Proto
module Chaos = Pruning_fi.Chaos
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Prng = Pruning_util.Prng
module Mono = Pruning_util.Mono
open Cmdliner

(* Distinct exit codes so scripts (and the CI crash-resume smoke test)
   can tell validation failures apart; documented in the man page. *)
let exit_bad_core = 10
let exit_bad_cycles = 11
let exit_bad_samples = 12
let exit_bad_seed = 13
let exit_bad_interval = 14
let exit_bad_audit = 15
let exit_bad_supervisor = 16
let exit_journal = 17
let exit_bad_dist = 18
let exit_network = 19
let exit_poisoned = 20
let exit_budget = 21
let exit_bad_model = 22
let exit_model_mismatch = 23

let fail code fmt = Printf.ksprintf (fun s -> prerr_endline ("campaign: " ^ s); Some code) fmt

(* Self-chaos: a deterministic infrastructure fault plan, armed by
   --chaos SEED. The plan is a pure function of the seed (and budget),
   so a chaotic run is replayable bit-for-bit. --chaos-profile process
   additionally arms whole-process kills/stalls and disk pressure —
   survivable only under serve --supervise. --chaos-profile liar turns a
   worker Byzantine: it deterministically corrupts a fraction of its
   verdicts before framing, so only quorum arbitration can catch it. *)
let make_chaos ~chaos_profile ~chaos_seed ~chaos_budget =
  let profile =
    match chaos_profile with
    | `Default -> Chaos.default_profile
    | `Process -> Chaos.process_profile
    | `Liar -> Chaos.liar_profile
  in
  Option.map
    (fun seed -> Chaos.create ~profile:{ profile with Chaos.budget = chaos_budget } ~seed ())
    chaos_seed

let validate_chaos ~chaos_budget =
  if chaos_budget < 0 then
    fail exit_bad_supervisor "--chaos-budget must be non-negative (got %d)" chaos_budget
  else None

(* --engine names the classification kernel; the older --batched flag is
   kept as an alias for --engine batched, and the two must agree. *)
let resolve_kernel ~batched ~engine =
  match engine with
  | Some k when batched && k <> Fi_campaign.Batched ->
    Error
      (Option.get
         (fail exit_bad_supervisor "--batched conflicts with --engine %s"
            (Fi_campaign.kernel_name k)))
  | Some k -> Ok k
  | None -> Ok (if batched then Fi_campaign.Batched else Fi_campaign.Scalar)

(* --fault-model names the fault model every sampled fault is classified
   under; a bad spec gets its own exit code before any engine is built. *)
let resolve_model spec =
  match Fault_model.of_string spec with
  | Ok m -> Ok m
  | Error msg -> Error (Option.get (fail exit_bad_model "%s" msg))

(* Only the per-fault kernels understand multi-flop/multi-cycle faults;
   the bit-parallel ones are one-flip-per-lane by construction. The
   fallback is explicit (printed) and deterministic, so a resumed or
   distributed campaign re-derives the identical kernel. *)
let effective_kernel ~model ~kernel =
  match (model, kernel) with
  | Fault_model.Seu, k -> k
  | _, Fi_campaign.Batched -> Fi_campaign.Scalar
  | _, Fi_campaign.Delta_batched -> Fi_campaign.Delta
  | _, k -> k

let note_kernel_fallback ~model ~kernel =
  let k = effective_kernel ~model ~kernel in
  if k <> kernel then
    Printf.printf "(--fault-model %s has no bit-parallel kernel; falling back to --engine %s)\n%!"
      (Fault_model.name model) (Fi_campaign.kernel_name k);
  k

(* Resuming under a different fault model would silently change what
   every recorded verdict means; refuse it upfront with a distinct exit
   code (require_match would also catch it, but as a generic journal
   error after engines were built). An unreadable header falls through
   to the resume path, which reports the corruption properly. *)
let check_journal_model ~journal ~active ~model =
  match journal with
  | Some dir when active && Journal.exists ~dir -> (
    match Journal.read_header ~dir with
    | exception Journal.Error _ -> None
    | h when h.Journal.fault_model <> model ->
      fail exit_model_mismatch
        "journal %s pins fault model %s but this invocation asked for %s; resume with \
         --fault-model %s"
        dir
        (Fault_model.name h.Journal.fault_model)
        (Fault_model.name model) (Fault_model.name h.Journal.fault_model)
    | _ -> None)
  | _ -> None

(* --lanes caps the in-flight faults of the wide engines; 0 (default)
   selects the engine's maximum. Only the batched engines have lanes,
   so a non-zero --lanes with a per-fault engine is a conflict, not a
   silent no-op. *)
let validate_lanes ~kernel ~lanes =
  let cap name max_lanes =
    if lanes > max_lanes then
      fail exit_bad_supervisor "--lanes must be in [1, %d] for --engine %s (got %d)" max_lanes name
        lanes
    else None
  in
  if lanes < 0 then fail exit_bad_supervisor "--lanes must be non-negative (got %d)" lanes
  else if lanes = 0 then None
  else
    match kernel with
    | Fi_campaign.Batched -> cap "batched" Fi_campaign.max_fault_lanes
    | Fi_campaign.Delta_batched -> cap "delta-batched" Fi_campaign.max_delta_lanes
    | Fi_campaign.Scalar | Fi_campaign.Delta ->
      fail exit_bad_supervisor "--lanes only applies to --engine batched or delta-batched (got %s)"
        (Fi_campaign.kernel_name kernel)

(* The four system makers (scalar, lane-parallel, delta, batched-delta)
   for a built-in core/program pair — one per classification engine. *)
let make_system core program =
  let avr p name =
    Some
      ( (fun nl -> System.create_avr ?netlist:nl ~program:(Lazy.force p) name),
        (fun nl -> System.create_avr_lanes ?netlist:nl ~program:(Lazy.force p) name),
        (fun nl ~trace -> System.create_avr_delta ?netlist:nl ~program:(Lazy.force p) ~trace name),
        fun nl ~trace ->
          System.create_avr_delta_batch ?netlist:nl ~program:(Lazy.force p) ~trace name )
  in
  let msp p name =
    Some
      ( (fun nl -> System.create_msp ?netlist:nl ~program:(Lazy.force p) name),
        (fun nl -> System.create_msp_lanes ?netlist:nl ~program:(Lazy.force p) name),
        (fun nl ~trace -> System.create_msp_delta ?netlist:nl ~program:(Lazy.force p) ~trace name),
        fun nl ~trace ->
          System.create_msp_delta_batch ?netlist:nl ~program:(Lazy.force p) ~trace name )
  in
  match (core, program) with
  | "avr", "fib" -> avr (lazy (Avr_asm.assemble Programs.avr_fib)) "avr/fib"
  | "avr", "conv" -> avr (lazy (Avr_asm.assemble Programs.avr_conv)) "avr/conv"
  | "msp430", "fib" -> msp (lazy (Msp_asm.assemble Programs.msp_fib)) "msp/fib"
  | "msp430", "conv" -> msp (lazy (Msp_asm.assemble Programs.msp_conv)) "msp/conv"
  | _ -> None

(* Upfront validation: every bad argument gets its own exit code and an
   actionable message instead of an exception (or silent misbehaviour)
   halfway into the campaign. *)
let validate ~core ~program ~cycles ~samples ~seed ~checkpoint_interval ~audit ~watchdog ~retries
    ~jobs ~prune ~resume ~journal =
  if make_system core program = None then
    fail exit_bad_core
      "unknown core/program %S/%S (valid: avr|msp430 x fib|conv)" core program
  else if cycles <= 0 then
    fail exit_bad_cycles "--cycles must be positive (got %d)" cycles
  else if samples < 0 then
    fail exit_bad_samples "--samples must be non-negative (got %d)" samples
  else if seed < 0 then
    fail exit_bad_seed
      "--seed must be non-negative (got %d); seeds are recorded in journal headers as-is" seed
  else if checkpoint_interval < 0 then
    fail exit_bad_interval
      "--checkpoint-interval must be non-negative (got %d); 0 selects the automatic interval"
      checkpoint_interval
  else if not (audit >= 0. && audit <= 1.) then
    fail exit_bad_audit "--audit must be a fraction in [0, 1] (got %g)" audit
  else if audit > 0. && not prune then
    fail exit_bad_audit "--audit %g needs --prune: without pruning there is nothing to audit" audit
  else if watchdog < 0 then
    fail exit_bad_supervisor "--watchdog must be non-negative cycles (got %d); 0 disables it"
      watchdog
  else if retries < 0 then fail exit_bad_supervisor "--retries must be non-negative (got %d)" retries
  else if jobs < 1 then fail exit_bad_supervisor "--jobs must be positive (got %d)" jobs
  else if resume && journal = None then
    fail exit_journal "--resume needs --journal pointing at the journal to resume"
  else None

(* Cooperative SIGINT/SIGTERM shutdown: the durable runner, coordinator
   and workers all poll the flag between experiments, journal/submit
   everything finished so far and return; we then report how to resume
   and exit with the conventional 128+signal code. *)
let stop_signal = Atomic.make 0

let install_signal_handlers () =
  let handle signum = Sys.Signal_handle (fun _ -> Atomic.set stop_signal signum) in
  (try Sys.set_signal Sys.sigint (handle Sys.sigint) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm (handle Sys.sigterm) with Invalid_argument _ -> ()

let stop_requested () = Atomic.get stop_signal <> 0
let stop_exit_code () = if Atomic.get stop_signal = Sys.sigterm then 143 else 130

let report_unknown_flops pruner =
  match pruner with
  | Some p when Replay.unknown_count p > 0 ->
    Printf.printf
      "warning: %d prune lookups named flops outside the fault space (injected, not pruned)\n"
      (Replay.unknown_count p)
  | _ -> ()

let print_stats (stats : Fi_campaign.stats) elapsed =
  Printf.printf "ran %d injections (%d skipped as pruned, %d crashed) in %.1fs (%.1f injections/s)\n"
    stats.Fi_campaign.injections stats.Fi_campaign.skipped stats.Fi_campaign.crashed elapsed
    (float_of_int stats.Fi_campaign.injections /. max 1e-9 elapsed);
  Printf.printf "verdicts: %d benign, %d latent, %d SDC\n" stats.Fi_campaign.benign
    stats.Fi_campaign.latent stats.Fi_campaign.sdc

(* The deterministic MATE-pruner build shared by the local runner and
   every distributed worker: identical inputs, identical skip set. *)
let build_pruner nl ~make ~cycles ~space =
  Printf.printf "searching MATEs...\n%!";
  let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  Printf.printf "replaying golden trace over %d MATEs...\n%!" (Mateset.size set);
  let sys = make (Some nl) in
  let trace = System.record sys ~cycles in
  let triggers = Replay.triggers set trace in
  let pruner = Replay.pruner set triggers ~space () in
  let pruned = Replay.pruner_masked_count pruner in
  (* MATEs reason about single-flop faults; report against the SEU total
     (flops x cycles), not the model-keyed space size — for SET/MBU the
     two differ and the lifted skip predicate covers less than this. *)
  let seu_total = Array.length space.Fault_space.flops * space.Fault_space.cycles in
  Printf.printf "MATEs prune %d of %d single-flop faults (%.2f%%) before injection\n%!" pruned
    seu_total
    (Pruning_util.Stats.percentage pruned seu_total);
  pruner

(* ------------------------------------------------------------------ *)
(* campaign [run]: the single-process engine of PR 1-3.                 *)

let run core program cycles samples seed prune jobs checkpoint_interval batched engine lanes
    fault_model journal resume audit watchdog retries chaos_profile chaos_seed chaos_budget =
  match resolve_kernel ~batched ~engine with
  | Error code -> code
  | Ok kernel -> (
  match resolve_model fault_model with
  | Error code -> code
  | Ok model -> (
  match
    match
      validate ~core ~program ~cycles ~samples ~seed ~checkpoint_interval ~audit ~watchdog
        ~retries ~jobs ~prune ~resume ~journal
    with
    | Some code -> Some code
    | None -> (
      match validate_lanes ~kernel ~lanes with
      | Some code -> Some code
      | None -> (
        match check_journal_model ~journal ~active:resume ~model with
        | Some code -> Some code
        | None -> validate_chaos ~chaos_budget))
  with
  | Some code -> code
  | None -> (
    let lanes = if lanes > 0 then Some lanes else None in
    let make, make_lanes, make_delta, make_delta_batch =
      match make_system core program with
      | Some m -> m
      | None -> assert false
    in
    let nl = (make None).System.netlist in
    match Fault_space.full ~model nl ~cycles with
    | exception Invalid_argument msg -> Option.get (fail exit_bad_model "%s" msg)
    | space ->
    let kernel = note_kernel_fallback ~model ~kernel in
    Printf.printf "%s/%s: fault space [%s] = %d keys x %d cycles = %d faults; sampling %d\n%!"
      core program (Fault_model.name model) (Fault_space.n_keys space) cycles
      (Fault_space.size space) samples;
    let checkpoint_interval = if checkpoint_interval > 0 then Some checkpoint_interval else None in
    let campaign =
      Fi_campaign.create ?checkpoint_interval
        ~make:(fun () -> make (Some nl))
        ~make_lanes:(fun () -> make_lanes (Some nl))
        ~make_delta:(fun ~trace -> make_delta (Some nl) ~trace)
        ~make_delta_batch:(fun ~trace -> make_delta_batch (Some nl) ~trace)
        ~total_cycles:cycles ()
    in
    Printf.printf "checkpoint interval: %d cycles; jobs: %d; engine: %s\n%!"
      (Fi_campaign.checkpoint_interval campaign) jobs (Fi_campaign.kernel_name kernel);
    let pruner = if prune then Some (build_pruner nl ~make ~cycles ~space) else None in
    (* The MATE pruner proves single-flop, single-cycle (SEU) faults
       benign; [lift_pruned] soundly lifts that claim to the model's
       expanded fault (or refuses to, for faults MATEs cannot cover). *)
    let skip =
      Option.map
        (fun p ->
          Fault_space.lift_pruned space ~pruned:(fun ~flop_id ~cycle ->
              Replay.pruned p ~flop_id ~cycle))
        pruner
    in
    let durable =
      journal <> None || resume || audit > 0. || watchdog > 0 || chaos_seed <> None
    in
    if kernel <> Fi_campaign.Scalar && jobs > 1 then
      Printf.printf "(--engine %s runs on one domain; ignoring --jobs)\n%!"
        (Fi_campaign.kernel_name kernel);
    let start = Mono.now () in
    if not durable then begin
      let rng = Prng.create seed in
      let stats =
        match kernel with
        | Fi_campaign.Scalar -> Fi_campaign.run_sample campaign ~space ~rng ~n:samples ?skip ~jobs ()
        | Fi_campaign.Batched ->
          Fi_campaign.run_sample_batched campaign ~space ~rng ~n:samples ?skip ?lanes ()
        | Fi_campaign.Delta -> Fi_campaign.run_sample_delta campaign ~space ~rng ~n:samples ?skip ()
        | Fi_campaign.Delta_batched ->
          Fi_campaign.run_sample_delta_batched campaign ~space ~rng ~n:samples ?skip ?lanes ()
      in
      print_stats stats (Mono.now () -. start);
      report_unknown_flops pruner;
      0
    end
    else begin
      install_signal_handlers ();
      let audit_arg =
        match (pruner, audit) with
        | Some p, a when a > 0. ->
          Some
            ( a,
              {
                Durable.masking =
                  Fault_space.lift_masking space ~masking:(fun ~flop_id ~cycle ->
                      Replay.masking p ~flop_id ~cycle);
                quarantine = Replay.quarantine p;
                describe = Replay.describe_mate p;
              } )
        | _ -> None
      in
      match
        Durable.run campaign ~space ~seed ~n:samples ~ident:(core, program) ?skip ?audit:audit_arg
          ~jobs ~kernel ?lanes
          ?budget:(if watchdog > 0 then Some watchdog else None)
          ~retries ?journal ~resume ~should_stop:stop_requested
          ?chaos:(make_chaos ~chaos_profile ~chaos_seed ~chaos_budget) ()
      with
      | exception Journal.Error msg ->
        prerr_endline ("campaign: " ^ msg);
        exit_journal
      | result ->
        let elapsed = Mono.now () -. start in
        if result.Durable.recovered > 0 then
          Printf.printf "resumed: %d verdicts recovered from the journal%s\n"
            result.Durable.recovered
            (if result.Durable.dropped_bytes > 0 then
               Printf.sprintf " (%d torn trailing bytes truncated)" result.Durable.dropped_bytes
             else "");
        if result.Durable.retried > 0 then
          Printf.printf "supervisor: %d experiment retries on fresh systems\n" result.Durable.retried;
        print_stats result.Durable.stats elapsed;
        if audit > 0. then begin
          let a = result.Durable.audit in
          Printf.printf "audit: %d pruned faults injected, %d soundness violations, %d MATEs quarantined\n"
            a.Durable.audited
            (List.length a.Durable.violations)
            (List.length a.Durable.quarantined);
          List.iter
            (fun v ->
              Printf.printf "  VIOLATION sample %d (flop %d, cycle %d): verdict %s, quarantined %s\n"
                v.Durable.v_index v.Durable.v_flop_id v.Durable.v_cycle
                (Format.asprintf "%a" Fi_campaign.pp_verdict v.Durable.v_verdict)
                (String.concat ", "
                   (List.map
                      (fun m ->
                        match pruner with
                        | Some p -> Replay.describe_mate p m
                        | None -> string_of_int m)
                      v.Durable.v_mates)))
            a.Durable.violations
        end;
        report_unknown_flops pruner;
        if not result.Durable.completed then begin
          Printf.printf "interrupted — progress is journaled%s\n"
            (match journal with
            | Some dir -> Printf.sprintf "; resume with --resume --journal %s" dir
            | None -> " only in this process (no --journal given)");
          stop_exit_code ()
        end
        else 0
    end)))

(* ------------------------------------------------------------------ *)
(* campaign serve: the distributed coordinator.                         *)

(* The supervisor's liveness probe joins under this reserved name; its
   Joined/Left chatter is filtered from the coordinator's event log. *)
let probe_name = "supervisor-probe"

(* Satellite of the self-healing service: the port file is written
   atomically (tempfile + rename), so a worker re-reading it mid-rewrite
   never sees an empty or half-written port — it sees the old port (one
   doomed connect, retried) or the new one. *)
let write_port_file f port =
  let tmp = f ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%d\n" port;
  close_out oc;
  Sys.rename tmp f

let read_port_file f =
  match open_in f with
  | exception Sys_error _ -> None
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    (match int_of_string_opt (String.trim line) with
    | Some p when p >= 1 && p <= 65535 -> Some p
    | _ -> None)

(* One coordinator incarnation: bind, announce, serve, report. Shared by
   the plain `serve` path and every supervised re-spawn (where [resume]
   is recomputed per incarnation from the journal's existence). *)
let run_coordinator ~core ~program ~cycles ~samples ~seed ~prune ~model ~listen ~port ~port_file
    ~config ~journal ~resume ~verbose ~chaos =
    (* The coordinator is engine-free: the campaign identity (and with
       it, the exact fault list every worker derives) is pinned entirely
       by this header. shards=0 / batched=false marks the journal as
       distributed so local --resume refuses it and vice versa. *)
    let header : Journal.header =
      {
        Journal.core;
        program;
        cycles;
        seed;
        samples;
        prune;
        audit = 0.;
        shards = 0;
        batched = false;
        epoch = 0;
        fault_model = model;
        prng = Prng.save (Prng.create seed);
        shard_prng = [||];
      }
    in
    match Coordinator.create ~config () with
    | exception Unix.Unix_error (e, _, _) ->
      Option.get (fail exit_bad_dist "cannot listen on %s:%d: %s" listen port (Unix.error_message e))
    | coordinator -> (
      let bound = Coordinator.port coordinator in
      Printf.printf "%s/%s: serving %d samples (seed %d%s, model %s) on %s:%d\n%!" core program
        samples seed
        (if prune then ", pruned" else "")
        (Fault_model.name model) listen bound;
      (match port_file with
      | None -> ()
      | Some f -> write_port_file f bound);
      install_signal_handlers ();
      let on_event e =
        match e with
        | Coordinator.Progress _ when not verbose -> ()
        | Coordinator.(Joined { worker } | Left { worker; _ }) when worker = probe_name -> ()
        | _ -> Format.printf "%a@.%!" Coordinator.pp_event e
      in
      let start = Mono.now () in
      match
        Coordinator.serve coordinator ~header ?journal ~resume ~should_stop:stop_requested
          ?chaos ~on_event ()
      with
      | exception Journal.Error msg ->
        prerr_endline ("campaign: " ^ msg);
        exit_journal
      | r ->
        if r.Coordinator.recovered > 0 then
          Printf.printf "resumed: %d verdicts recovered from the journal%s\n"
            r.Coordinator.recovered
            (if r.Coordinator.dropped_bytes > 0 then
               Printf.sprintf " (%d torn trailing bytes truncated)" r.Coordinator.dropped_bytes
             else "");
        Printf.printf "workers: %d joined, %d chunk leases re-dispatched, %d duplicate verdicts\n"
          r.Coordinator.workers r.Coordinator.redispatched r.Coordinator.duplicates;
        if r.Coordinator.verified > 0 then
          Printf.printf "verify: %d chunks cross-validated on a second worker\n"
            r.Coordinator.verified;
        if r.Coordinator.blacklisted > 0 then
          Printf.printf "blacklist: %d misbehaving workers refused re-admission\n"
            r.Coordinator.blacklisted;
        if r.Coordinator.mismatches > 0 then
          Printf.printf
            "arbitration: %d verdict disputes, %d resolved by quorum (%d overturned), %d \
             unresolved\n"
            r.Coordinator.mismatches r.Coordinator.arb_resolved r.Coordinator.arb_overturned
            r.Coordinator.arb_unresolved;
        if r.Coordinator.suspects <> [] then
          Printf.printf "reputation: %d workers quarantined as suspects: %s\n"
            (List.length r.Coordinator.suspects)
            (String.concat ", "
               (List.map
                  (fun (w, s) -> Printf.sprintf "%s (suspicion %d)" w s)
                  r.Coordinator.suspects));
        print_stats r.Coordinator.stats (Mono.now () -. start);
        if r.Coordinator.arb_unresolved > 0 then begin
          Printf.eprintf
            "campaign: %d verdict disputes had no reachable quorum (stats above carry the first \
             verdict, unvalidated)\n%!"
            r.Coordinator.arb_unresolved;
          exit_network
        end
        else if r.Coordinator.poisoned <> [] then begin
          Printf.eprintf
            "campaign: %d chunks quarantined as poisoned (each killed %d distinct workers): %s\n%s%!"
            (List.length r.Coordinator.poisoned)
            config.Coordinator.poison_threshold
            (String.concat ", " (List.map string_of_int r.Coordinator.poisoned))
            (match journal with
            | Some dir ->
              Printf.sprintf "campaign: stats above exclude them; retry with serve --resume \
                              --journal %s\n" dir
            | None -> "campaign: stats above exclude them (no --journal given to retry from)\n");
          exit_poisoned
        end
        else if not r.Coordinator.completed then begin
          Printf.printf "interrupted — progress is journaled%s\n"
            (match journal with
            | Some dir -> Printf.sprintf "; resume with serve --resume --journal %s" dir
            | None -> " only in this process (no --journal given)");
          stop_exit_code ()
        end
        else 0)

(* ------------------------------------------------------------------ *)
(* campaign work: a stateless worker fleet member.                      *)

exception Unknown_identity of string

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 1 && p <= 65535 && host <> "" -> Some (host, p)
    | _ -> None)

(* One worker process: engines are built lazily from the coordinator's
   Welcome header, so a worker needs no campaign flags at all. *)
let work_one ~host ~port ~name ~kernel ~checkpoint_interval ~retries ~max_reconnects
    ~recv_timeout ?readdress ~chaos () =
  let resolve (h : Journal.header) =
    (* The Welcome header pins the fault model; the worker obeys it —
       a fleet never mixes models within one campaign. *)
    let model = h.Journal.fault_model in
    let kernel = note_kernel_fallback ~model ~kernel in
    Printf.printf "campaign: %s/%s, %d cycles, %d samples, seed %d%s, model %s [%s]\n%!"
      h.Journal.core h.Journal.program h.Journal.cycles h.Journal.samples h.Journal.seed
      (if h.Journal.prune then ", pruned" else "")
      (Fault_model.name model)
      (Fi_campaign.kernel_name kernel);
    match make_system h.Journal.core h.Journal.program with
    | None ->
      raise
        (Unknown_identity
           (Printf.sprintf "coordinator asked for unknown core/program %S/%S" h.Journal.core
              h.Journal.program))
    | Some (make, make_lanes, make_delta, make_delta_batch) ->
      let nl = (make None).System.netlist in
      let space =
        try Fault_space.full ~model nl ~cycles:h.Journal.cycles
        with Invalid_argument msg ->
          raise
            (Unknown_identity
               (Printf.sprintf "coordinator pinned an impossible fault model: %s" msg))
      in
      let checkpoint_interval = if checkpoint_interval > 0 then Some checkpoint_interval else None in
      let campaign =
        Fi_campaign.create ?checkpoint_interval
          ~make:(fun () -> make (Some nl))
          ~make_lanes:(fun () -> make_lanes (Some nl))
          ~make_delta:(fun ~trace -> make_delta (Some nl) ~trace)
          ~make_delta_batch:(fun ~trace -> make_delta_batch (Some nl) ~trace)
          ~total_cycles:h.Journal.cycles ()
      in
      let skip =
        if not h.Journal.prune then None
        else begin
          let pruner = build_pruner nl ~make ~cycles:h.Journal.cycles ~space in
          Some
            (Fault_space.lift_pruned space ~pruned:(fun ~flop_id ~cycle ->
                 Replay.pruned pruner ~flop_id ~cycle))
        end
      in
      { Worker.campaign; space; skip; kernel }
  in
  match
    Worker.run ~host ~port ~resolve ?name ~recv_timeout ~retries ~max_reconnects ?readdress
      ~should_stop:stop_requested ?chaos ()
  with
  | exception Unknown_identity msg ->
    prerr_endline ("campaign: " ^ msg);
    exit_bad_dist
  | report -> (
    Printf.printf "worker: %d chunks, %d verdicts submitted, %d crashes, %d reconnects\n"
      report.Worker.chunks report.Worker.submitted report.Worker.crashes report.Worker.reconnects;
    match report.Worker.ended with
    | Worker.Campaign_done -> 0
    | Worker.Stopped -> stop_exit_code ()
    | Worker.Gave_up why ->
      prerr_endline ("campaign: giving up: " ^ why);
      exit_network)

let work hostport name workers batched engine checkpoint_interval retries max_reconnects
    recv_timeout chaos_profile chaos_seed chaos_budget =
  match resolve_kernel ~batched ~engine with
  | Error code -> code
  | Ok kernel -> (
  match
    match parse_hostport hostport with
    | None ->
      fail exit_bad_dist "expected HOST:PORT with port in [1, 65535] (got %S)" hostport
    | Some _ when workers < 1 -> fail exit_bad_dist "--workers must be positive (got %d)" workers
    | Some _ when workers > 1 && name <> None ->
      fail exit_bad_dist
        "--name and --workers %d are mutually exclusive: worker names must be unique" workers
    | Some _ when checkpoint_interval < 0 ->
      fail exit_bad_interval "--checkpoint-interval must be non-negative (got %d)"
        checkpoint_interval
    | Some _ when retries < 0 ->
      fail exit_bad_supervisor "--retries must be non-negative (got %d)" retries
    | Some _ when max_reconnects < 0 ->
      fail exit_bad_dist "--max-reconnects must be non-negative (got %d)" max_reconnects
    | Some _ when recv_timeout <= 0. ->
      fail exit_bad_dist "--recv-timeout must be positive seconds (got %g)" recv_timeout
    | Some _ when chaos_budget < 0 -> validate_chaos ~chaos_budget
    | Some hp -> (
      install_signal_handlers ();
      let host, port = hp in
      (* Forked fleet members get distinct chaos streams (seed + index):
         identical plans on every worker would fault in lockstep. *)
      let one i =
        work_one ~host ~port ~name ~kernel ~checkpoint_interval ~retries ~max_reconnects
          ~recv_timeout
          ~chaos:(make_chaos ~chaos_profile ~chaos_seed:(Option.map (fun s -> s + i) chaos_seed)
                    ~chaos_budget)
          ()
      in
      if workers = 1 then Some (one 0)
      else begin
        (* A local fleet: fork first (no domains/threads exist yet), let
           every process run its own engine, and report the first
           failure. *)
        let pids =
          List.init workers (fun i ->
              match Unix.fork () with
              | 0 ->
                (* _exit skips at_exit, so flush the report lines explicitly. *)
                let code = try one i with _ -> exit_network in
                (try flush_all () with Sys_error _ -> ());
                Unix._exit code
              | pid -> pid)
        in
        (* Reap in completion order — waitpid(-1) — so a member dying
           early never sits as a zombie behind a straggling sibling.
           SIGTERM is forwarded to the whole fleet exactly once, and the
           first non-zero exit code is the one propagated. *)
        let remaining = ref (List.length pids) in
        let first_nonzero = ref 0 in
        let forwarded = ref false in
        let forward_stop () =
          if stop_requested () && not !forwarded then begin
            forwarded := true;
            List.iter (fun p -> try Unix.kill p Sys.sigterm with Unix.Unix_error _ -> ()) pids
          end
        in
        while !remaining > 0 do
          forward_stop ();
          match Unix.waitpid [] (-1) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> remaining := 0
          | _pid, status ->
            decr remaining;
            let code =
              match status with
              | Unix.WEXITED c -> c
              | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> exit_network
            in
            if code <> 0 && !first_nonzero = 0 then first_nonzero := code
        done;
        Some (if stop_requested () then stop_exit_code () else !first_nonzero)
      end)
  with
  | Some code -> code
  | None -> assert false)

(* ------------------------------------------------------------------ *)
(* campaign serve, take two: the self-healing service.                  *)

(* The supervisor's liveness probe: a full Hello/Welcome handshake with
   deadlines, so a wedged-but-alive coordinator (accepting but not
   serving) fails the probe just like a dead one. *)
let probe_coordinator ~host ~port =
  match
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        let deadline = Mono.now () +. 2. in
        Proto.send ~deadline fd
          (Proto.Hello { version = Proto.version; name = probe_name; epoch = -1 });
        Proto.recv ~deadline fd)
  with
  | Proto.Welcome _ -> true
  | _ -> false
  | exception _ -> false

(* One supervised fleet member: a plain worker whose address is the port
   file (re-read before every connect, so it follows a restarted
   coordinator onto a fresh ephemeral port) and whose reconnect budget
   is generous — the supervisor, not the worker, decides when to give
   up on the service. *)
let supervised_work ~host ~current_port ~index ~chaos =
  install_signal_handlers ();
  let rec await_port n =
    match current_port () with
    | Some p -> p
    | None when n > 0 && not (stop_requested ()) ->
      Unix.sleepf 0.1;
      await_port (n - 1)
    | None -> 0 (* let the reconnect loop and [readdress] take over *)
  in
  let port = await_port 100 in
  work_one ~host ~port
    ~name:(Some (Printf.sprintf "fleet-%d" (index + 1)))
    ~kernel:Fi_campaign.Scalar ~checkpoint_interval:0 ~retries:2 ~max_reconnects:1000
    ~recv_timeout:30.
    ~readdress:(fun () -> Option.map (fun p -> (host, p)) (current_port ()))
    ~chaos ()

let serve core program cycles samples seed prune fault_model listen port port_file chunk_size
    lease idle_timeout poison_threshold blacklist_threshold verify_frac max_inflight quorum
    suspect_threshold arb_patience journal resume verbose supervise restart_budget restart_window
    fleet chaos_profile chaos_seed chaos_budget =
  match resolve_model fault_model with
  | Error code -> code
  | Ok model -> (
  let dist_checks () =
    if port < 0 || port > 65535 then
      fail exit_bad_dist "--port must be in [0, 65535] (got %d); 0 picks an ephemeral port" port
    else if chunk_size < 1 then
      fail exit_bad_dist "--chunk-size must be positive (got %d)" chunk_size
    else if lease <= 0. then
      fail exit_bad_dist "--lease must be positive seconds (got %g)" lease
    else if idle_timeout < 0. then
      fail exit_bad_dist "--idle-timeout must be non-negative seconds (got %g); 0 disables it"
        idle_timeout
    else if idle_timeout > 0. && idle_timeout <= lease then
      fail exit_bad_dist
        "--idle-timeout (%g) must exceed --lease (%g): a lapsed lease keeps the connection, the \
         read deadline closes it"
        idle_timeout lease
    else if poison_threshold < 0 then
      fail exit_bad_dist "--poison-threshold must be non-negative (got %d); 0 disables quarantine"
        poison_threshold
    else if blacklist_threshold < 0 then
      fail exit_bad_dist
        "--blacklist-threshold must be non-negative (got %d); 0 disables blacklisting"
        blacklist_threshold
    else if not (verify_frac >= 0. && verify_frac <= 1.) then
      fail exit_bad_dist "--verify-frac must be a fraction in [0, 1] (got %g)" verify_frac
    else if max_inflight < 0 then
      fail exit_bad_dist "--max-inflight must be non-negative (got %d); 0 disables the bound"
        max_inflight
    else if quorum < 1 then
      fail exit_bad_dist "--quorum must be at least 1 ballot per dispute (got %d)" quorum
    else if suspect_threshold < 0 then
      fail exit_bad_dist
        "--suspect-threshold must be non-negative (got %d); 0 disables reputation quarantine"
        suspect_threshold
    else if arb_patience <= 0. then
      fail exit_bad_dist "--arb-patience must be positive seconds (got %g)" arb_patience
    else if restart_budget < 0 then
      fail exit_bad_dist "--restart-budget must be non-negative (got %d)" restart_budget
    else if restart_window <= 0. then
      fail exit_bad_dist "--restart-window must be positive seconds (got %g)" restart_window
    else if fleet < 0 then
      fail exit_bad_dist "--workers must be non-negative (got %d)" fleet
    else if fleet > 0 && not supervise then
      fail exit_bad_dist
        "--workers on serve needs --supervise (use 'campaign work' for an unsupervised fleet)"
    else if supervise && journal = None then
      fail exit_bad_dist
        "--supervise needs --journal: a restarted coordinator re-enters through serve --resume"
    else if supervise && port = 0 && port_file = None then
      fail exit_bad_dist
        "--supervise with --port 0 needs --port-file: a restarted coordinator rebinds, and \
         workers (and the liveness probe) find the new port there"
    else (
      match check_journal_model ~journal ~active:(resume || supervise) ~model with
      | Some code -> Some code
      | None -> validate_chaos ~chaos_budget)
  in
  match
    match
      validate ~core ~program ~cycles ~samples ~seed ~checkpoint_interval:0 ~audit:0. ~watchdog:0
        ~retries:0 ~jobs:1 ~prune ~resume ~journal
    with
    | Some code -> Some code
    | None -> dist_checks ()
  with
  | Some code -> code
  | None -> (
    (* Satellite: a stale port file from a previous service would point
       fresh workers at a dead (or recycled) port; remove it before
       anyone can read it. The live value is rewritten atomically once
       the coordinator has bound. *)
    (match port_file with
    | Some f when Sys.file_exists f -> ( try Sys.remove f with Sys_error _ -> ())
    | _ -> ());
    let config =
      {
        Coordinator.default_config with
        Coordinator.listen;
        port;
        chunk_size;
        lease;
        idle_timeout;
        poison_threshold;
        blacklist_threshold;
        verify_frac;
        max_inflight;
        quorum;
        suspect_threshold;
        arb_patience;
      }
    in
    let chaos i =
      make_chaos ~chaos_profile ~chaos_seed:(Option.map (fun s -> s + i) chaos_seed) ~chaos_budget
    in
    let coordinator ~resume () =
      run_coordinator ~core ~program ~cycles ~samples ~seed ~prune ~model ~listen ~port
        ~port_file ~config ~journal ~resume ~verbose ~chaos:(chaos 0)
    in
    if not supervise then coordinator ~resume ()
    else begin
      let journal_dir = Option.get journal in
      install_signal_handlers ();
      let spawn_child body () =
        match Unix.fork () with
        | 0 ->
          (* The child starts with a clean slate: a signal the parent
             absorbed before the fork must not look received here. *)
          Atomic.set stop_signal 0;
          let code =
            try body () with
            | Journal.Error msg ->
              prerr_endline ("campaign: " ^ msg);
              exit_journal
            | _ -> exit_network
          in
          (* _exit skips at_exit, so flush the report lines explicitly. *)
          (try flush_all () with Sys_error _ -> ());
          Unix._exit code
        | pid -> pid
      in
      let current_port () =
        match port_file with
        | Some f -> read_port_file f
        | None -> if port > 0 then Some port else None
      in
      let specs =
        {
          Supervisor.name = "coordinator";
          critical = true;
          spawn =
            spawn_child (fun () ->
                (* Each incarnation decides for itself: a journal on disk
                   means a previous incarnation recorded something — come
                   back through --resume, which also bumps the epoch that
                   tells surviving workers to re-deliver. *)
                coordinator ~resume:(resume || Journal.exists ~dir:journal_dir) ());
        }
        :: List.init fleet (fun i ->
               {
                 Supervisor.name = Printf.sprintf "worker-%d" (i + 1);
                 critical = false;
                 spawn =
                   spawn_child (fun () ->
                       supervised_work ~host:listen ~current_port ~index:i
                         ~chaos:(chaos (i + 1)));
               })
      in
      let probe () =
        match current_port () with
        | None -> false
        | Some p -> probe_coordinator ~host:listen ~port:p
      in
      let sup_config =
        {
          Supervisor.default_config with
          Supervisor.max_restarts = restart_budget;
          window = restart_window;
          probe_interval = 2.0;
        }
      in
      let on_event e = Format.printf "supervisor: %a@.%!" Supervisor.pp_event e in
      let r = Supervisor.run ~config:sup_config ~probe ~should_stop:stop_requested ~on_event specs in
      match r.Supervisor.outcome with
      | Supervisor.Completed code ->
        Printf.printf "supervisor: campaign complete (%d restarts, %d probe kills)\n"
          r.Supervisor.restarts r.Supervisor.probe_kills;
        code
      | Supervisor.Stopped -> stop_exit_code ()
      | Supervisor.Exhausted { name; last_code } ->
        Printf.eprintf
          "campaign: restart budget exhausted on %s (last exit %d); the journal is intact — rerun \
           with --supervise or finish with serve --resume --journal %s\n%!"
          name last_code journal_dir;
        exit_budget
    end))

(* ------------------------------------------------------------------ *)
(* campaign fsck: offline journal integrity check.                      *)

let fsck_dir dir =
  let r = Journal.fsck ~dir in
  (match r.Journal.fsck_header with
  | Some h ->
    Printf.printf "header: %s/%s, %d cycles, %d samples, seed %d%s, model %s, epoch %d%s\n"
      h.Journal.core h.Journal.program h.Journal.cycles h.Journal.samples h.Journal.seed
      (if h.Journal.prune then ", pruned" else "")
      (Fault_model.name h.Journal.fault_model)
      h.Journal.epoch
      (if h.Journal.shards = 0 then " (distributed)"
       else Printf.sprintf " (%d shards)" h.Journal.shards)
  | None -> Printf.printf "header: missing or unreadable\n");
  Printf.printf "segments: %d sealed%s\n" r.Journal.fsck_segments
    (match r.Journal.fsck_active with
    | Some n -> Printf.sprintf ", active with %d records" n
    | None -> ", no active segment");
  if r.Journal.fsck_torn_bytes > 0 then
    Printf.printf "torn tail: %d trailing bytes (resume will truncate them)\n"
      r.Journal.fsck_torn_bytes;
  let c = r.Journal.fsck_counts in
  Printf.printf "records: %d intact\n" r.Journal.fsck_records;
  Printf.printf "verdicts: %d benign, %d latent, %d SDC, %d skipped, %d crashed\n" c.(0) c.(1)
    c.(2) c.(3) c.(4);
  if c.(5) > 0 then Printf.printf "quarantined MATEs: %d\n" c.(5);
  if c.(6) > 0 then Printf.printf "poisoned chunks: %d\n" c.(6);
  if c.(7) > 0 then
    Printf.printf "arbitrated: %d disputes settled by quorum (%d overturned, %d ballots cast)\n"
      c.(7) r.Journal.fsck_overturned r.Journal.fsck_arb_ballots;
  (* Per-model verdict breakdown: redundant for a pure-SEU journal (the
     lines above already are that breakdown), informative the moment any
     record carries another — or an unknown — model nibble. *)
  (match r.Journal.fsck_models with
  | [] | [ (0, _) ] -> ()
  | models ->
    List.iter
      (fun (id, mc) ->
        let name =
          match Fault_model.base_name_of_id id with
          | Some n -> n
          | None -> Printf.sprintf "unknown-model-%d" id
        in
        Printf.printf
          "model %s: %d benign, %d latent, %d SDC, %d skipped, %d crashed\n" name mc.(0) mc.(1)
          mc.(2) mc.(3) mc.(4))
      models);
  (match r.Journal.fsck_header with
  | Some h -> Printf.printf "covered: %d of %d samples\n" r.Journal.fsck_covered h.Journal.samples
  | None -> Printf.printf "covered: %d distinct sample indices\n" r.Journal.fsck_covered);
  if r.Journal.fsck_errors = [] then begin
    print_string "clean: a resume will accept this journal\n";
    0
  end
  else begin
    List.iter
      (fun (file, problem) -> Printf.eprintf "campaign: %s: %s\n" file problem)
      r.Journal.fsck_errors;
    Printf.eprintf "campaign: %d problem%s found\n%!"
      (List.length r.Journal.fsck_errors)
      (if List.length r.Journal.fsck_errors = 1 then "" else "s");
    exit_journal
  end

(* ------------------------------------------------------------------ *)
(* CLI.                                                                 *)

let core = Arg.(value & opt string "avr" & info [ "core" ] ~doc:"avr or msp430.")
let program = Arg.(value & opt string "fib" & info [ "program" ] ~doc:"fib or conv.")
let cycles = Arg.(value & opt int 500 & info [ "cycles" ] ~doc:"Campaign horizon in cycles.")
let samples = Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Number of sampled faults.")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Sampling seed.")
let prune = Arg.(value & flag & info [ "prune" ] ~doc:"Prune the fault list with MATEs first.")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc:"Number of OCaml domains to inject from.")

let checkpoint_interval =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-interval" ]
        ~doc:"Golden-run checkpoint spacing in cycles (0 = auto: total/64).")

let batched =
  Arg.(
    value & flag
    & info [ "batched" ]
        ~doc:
          "Use the bit-parallel (PPSFP) engine: up to 62 faults simulated at once in the bit-lanes \
           of one machine word. Verdicts are identical to the scalar engine. Alias for \
           $(b,--engine batched).")

let engine_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("scalar", Fi_campaign.Scalar);
                ("batched", Fi_campaign.Batched);
                ("delta", Fi_campaign.Delta);
                ("delta-batched", Fi_campaign.Delta_batched);
              ]))
        None
    & info [ "engine" ] ~docv:"KERNEL"
        ~doc:
          "Classification kernel: $(b,scalar) (one fault at a time from the nearest golden \
           checkpoint), $(b,batched) (bit-parallel PPSFP: up to 62 faults in the bit-lanes of \
           one machine word), $(b,delta) (activity-gated: only wires differing from the golden \
           run are re-evaluated, and a fault is retired the moment its difference set empties) \
           or $(b,delta-batched) (both at once: up to 63 in-flight faults, each a sparse delta \
           against one shared recorded golden run, swept over one shared schedule). All four \
           produce bit-identical verdicts. Default scalar.")

let lanes_arg =
  Arg.(
    value & opt int 0
    & info [ "lanes" ] ~docv:"N"
        ~doc:
          "In-flight faults per pass for the wide engines (0 = the engine's maximum: 62 for \
           $(b,--engine batched), 63 for $(b,--engine delta-batched)). Only valid with those \
           engines; verdicts are identical for every width.")

let fault_model_arg =
  Arg.(
    value & opt string "seu"
    & info [ "fault-model" ] ~docv:"MODEL"
        ~doc:
          "Fault model to sample and classify: $(b,seu) (single-event upset: one flop flipped \
           for one cycle — the default and the classic HAFI model), $(b,set) (single-event \
           transient: a glitch on a gate output, expanded through the gate's combinational \
           output cone into the set of flops that would latch it that cycle), $(b,mbu:K) \
           (multi-bit upset: $(i,K) layout-adjacent flops flipped together in one cycle) or \
           $(b,intermittent:N) (intermittent stuck-at: one flop held at the flipped value for \
           $(i,N) consecutive cycles; $(b,intermittent:1) is exactly $(b,seu)). The model is \
           pinned in the journal header and on every distributed chunk; scalar and delta \
           engines support every model bit-identically, the bit-parallel engines fall back \
           (printed) for non-SEU models.")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Stream every verdict into a crash-safe CRC-checksummed journal at $(docv). A killed \
           campaign resumes from it with $(b,--resume) and finishes with bit-identical statistics.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume the campaign recorded in $(b,--journal): recorded verdicts are replayed, only \
           missing experiments run. The journal header must match this invocation.")

let audit =
  Arg.(
    value & opt float 0.
    & info [ "audit" ] ~docv:"P"
        ~doc:
          "MATE soundness sentinel: inject fraction $(docv) of the faults the pruner claims \
           benign and verify the verdict. A violation quarantines the offending MATE (its faults \
           are injected, not pruned, from then on) and is reported; the campaign never aborts. \
           Requires $(b,--prune).")

let watchdog =
  Arg.(
    value & opt int 0
    & info [ "watchdog" ] ~docv:"CYCLES"
        ~doc:
          "Per-experiment watchdog: an experiment consuming more than $(docv) simulated cycles is \
           aborted, retried on a fresh system, and eventually recorded as crashed (0 = off; \
           scalar and delta engines only).")

let retries =
  Arg.(
    value & opt int 2
    & info [ "retries" ]
        ~doc:
          "Supervisor retries per failing experiment, each on a freshly built system, before it \
           is recorded as crashed.")

let chaos_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Arm the deterministic self-chaos fault plan seeded with $(docv): injected frame \
           delays, truncations, bit corruptions, connection resets, short journal writes, \
           ENOSPC/EIO, fsync failures, torn renames, experiment crashes and stalls, duplicate \
           verdict frames. The plan is a pure function of the seed; the final statistics are \
           bit-identical to a chaos-free run (directly or after $(b,--resume)).")

let chaos_budget_arg =
  Arg.(
    value & opt int 64
    & info [ "chaos-budget" ] ~docv:"N"
        ~doc:
          "Total faults the chaos plan may inject before going quiet (per process). A finite \
           budget guarantees the campaign eventually makes progress.")

let chaos_profile_arg =
  Arg.(
    value
    & opt (enum [ ("default", `Default); ("process", `Process); ("liar", `Liar) ]) `Default
    & info [ "chaos-profile" ] ~docv:"PROFILE"
        ~doc:
          "Which fault rates the $(b,--chaos) plan draws from: $(b,default) injects only \
           in-process faults every layer already absorbs; $(b,process) additionally arms \
           whole-process kills and stalls (mid-dispatch, mid-drain, mid-seal) and disk pressure \
           (transient ENOSPC, slow writes) — faults only a supervised service (serve \
           $(b,--supervise)) rides out; $(b,liar) (workers only) turns the worker Byzantine: a \
           deterministic fraction of its verdicts are corrupted before framing, so they pass \
           every CRC and only the coordinator's quorum arbitration (serve $(b,--verify-frac) + \
           $(b,--quorum)) catches, outvotes and quarantines it.")

let exit_doc =
  [
    `S Manpage.s_exit_status;
    `P "0 on success. Validation failures use distinct codes:";
    `P "10: unknown core/program; 11: bad --cycles; 12: bad --samples; 13: bad --seed; 14: bad \
        --checkpoint-interval; 15: bad --audit (or --audit without --prune); 16: bad \
        --watchdog/--retries/--jobs/--lanes/--chaos-budget (including --lanes with a per-fault \
        engine, or --batched conflicting with --engine); 17: journal error (corrupt, mismatched, \
        missing for --resume, or the disk failed mid-run — resumable); 18: bad distributed \
        argument (--port, --chunk-size, --lease, --idle-timeout, --poison-threshold, \
        --blacklist-threshold, --verify-frac, --max-inflight, --quorum, --suspect-threshold, \
        --arb-patience, --recv-timeout, HOST:PORT, --workers, --max-reconnects, or --name with \
        --workers > 1); 19: network failure (a worker gave up reconnecting) or an unresolved \
        verdict dispute — workers disagreed and quorum arbitration could not reach a majority \
        (disputes a quorum does settle are journaled and do not fail the campaign); 20: chunks \
        quarantined as poisoned after repeatedly killing workers (stats exclude them; resumable \
        with --resume); 21: the supervisor's restart budget was exhausted (a child kept dying \
        faster than --restart-budget per --restart-window allows) — the journal is intact, so \
        rerunning with --supervise (or serve --resume) finishes the campaign.";
    `P "22: bad --fault-model (unknown model name, malformed or non-positive mbu:K / \
        intermittent:N parameter, or a cluster size exceeding the core's flop count); 23: \
        --fault-model contradicts the journal being resumed (the header pins the model every \
        recorded verdict was classified under — rerun with the recorded model).";
    `P "130/143: interrupted by SIGINT/SIGTERM after a clean journal flush (resumable with \
        --resume).";
  ]

let run_term =
  Term.(
    const run $ core $ program $ cycles $ samples $ seed $ prune $ jobs $ checkpoint_interval
    $ batched $ engine_arg $ lanes_arg $ fault_model_arg $ journal $ resume $ audit $ watchdog
    $ retries $ chaos_profile_arg $ chaos_seed_arg $ chaos_budget_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~man:exit_doc
       ~doc:
         "single-process sampled fault-injection campaign with optional MATE pruning, crash-safe \
          journaling, supervised execution and MATE soundness auditing (the default subcommand)")
    run_term

let serve_cmd =
  let listen =
    Arg.(value & opt string "127.0.0.1" & info [ "listen" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 7447
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; 0 picks an ephemeral port (printed).")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the actually bound port to $(docv) (useful with --port 0 in scripts).")
  in
  let chunk_size =
    Arg.(
      value & opt int 256
      & info [ "chunk-size" ] ~docv:"N" ~doc:"Samples per chunk lease handed to a worker.")
  in
  let lease =
    Arg.(
      value & opt float 10.
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:
            "Worker silence tolerated before its chunks are re-dispatched to other workers. Any \
             frame (results or heartbeat) renews the lease.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Read deadline per connection: a worker completely silent this long is disconnected \
             (its leases re-dispatch) instead of pinning a coordinator slot forever. Must exceed \
             $(b,--lease); 0 disables it.")
  in
  let poison_threshold =
    Arg.(
      value & opt int 3
      & info [ "poison-threshold" ] ~docv:"N"
          ~doc:
            "Quarantine a chunk once $(docv) distinct workers die holding its lease: it is \
             journaled, reported, excluded from the stats (exit 20) and never re-dispatched — \
             instead of killing the whole fleet worker by worker. 0 disables quarantine.")
  in
  let blacklist_threshold =
    Arg.(
      value & opt int 3
      & info [ "blacklist-threshold" ] ~docv:"N"
          ~doc:
            "Refuse further connections from a worker name after $(docv) protocol violations \
             (corrupt frames, out-of-protocol messages). 0 disables blacklisting.")
  in
  let verify_frac =
    Arg.(
      value & opt float 0.
      & info [ "verify-frac" ] ~docv:"R"
          ~doc:
            "Cross-validation sampling: re-dispatch a deterministic fraction $(docv) of completed \
             chunks to a second (different when possible) worker and compare verdicts. A \
             disagreement opens a quorum arbitration ($(b,--quorum)); only a dispute no quorum \
             can settle fails the campaign (exit 19).")
  in
  let quorum =
    Arg.(
      value & opt int 3
      & info [ "quorum" ] ~docv:"K"
          ~doc:
            "Maximum arbitration ballots recruited per disputed chunk: on a verdict mismatch the \
             chunk is re-issued to up to $(docv) workers that are neither disputant, and each \
             disputed sample is settled by strict majority over both claims plus the ballots — \
             losers take a reputation hit ($(b,--suspect-threshold)). Tolerates any minority of \
             liars; must be at least 1.")
  in
  let suspect_threshold =
    Arg.(
      value & opt int 5
      & info [ "suspect-threshold" ] ~docv:"N"
          ~doc:
            "Suspicion score at which a worker name is quarantined for the rest of the run: \
             arbitration losses score 3, corrupt frames 2, lease expiries 1. A quarantined \
             worker still computes but is excluded from arbitration voting and every chunk it \
             completes is cross-validated regardless of $(b,--verify-frac). 0 disables \
             reputation-based quarantine.")
  in
  let arb_patience =
    Arg.(
      value & opt float 30.
      & info [ "arb-patience" ] ~docv:"SECONDS"
          ~doc:
            "How long an arbitration may sit with no ballot progress (e.g. no eligible voter \
             connected) before its disputes are declared unresolved (exit 19) instead of \
             stalling the campaign forever. Should comfortably exceed $(b,--lease).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Also print per-frame progress events.")
  in
  let max_inflight =
    Arg.(
      value & opt int 1024
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Backpressure bound on chunks simultaneously out on leases: requests past it are \
             answered Wait until verdicts drain. The same Wait is served while the journal \
             writer is degraded (disk pressure, ENOSPC retries). 0 disables the bound.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the coordinator (and, with $(b,--workers), a local fleet) as supervised child \
             processes: any child that dies — SIGKILL included — is restarted under capped \
             exponential backoff, the coordinator re-entering through $(b,--resume) with a \
             bumped epoch, with zero operator intervention and bit-identical final statistics. \
             Requires $(b,--journal); with $(b,--port 0) also $(b,--port-file). A liveness \
             probe (Hello/Welcome with deadlines) additionally catches a wedged-but-alive \
             coordinator and kills it into the same restart path.")
  in
  let restart_budget =
    Arg.(
      value & opt int 5
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Restarts allowed per child within a sliding $(b,--restart-window): a child dying \
             faster than that exhausts its budget and the service escalates to exit 21 — \
             resumable, never a silent crash loop.")
  in
  let restart_window =
    Arg.(
      value & opt float 60.
      & info [ "restart-window" ] ~docv:"SECONDS"
          ~doc:"The sliding window $(b,--restart-budget) counts restarts in.")
  in
  let fleet =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Fork $(docv) supervised local workers alongside the coordinator (scalar engine, \
             named fleet-1..fleet-N, following the port file across coordinator restarts). \
             Requires $(b,--supervise); 0 means workers join externally via $(b,campaign work).")
  in
  Cmd.v
    (Cmd.info "serve" ~man:exit_doc
       ~doc:
         "distributed-campaign coordinator: owns the fault-space sharding, the verdict journal \
          and the chunk-lease table; workers connect with $(b,campaign work). Survives worker \
          crashes, stragglers, misbehaving clients and its own restart (--journal + --resume) — \
          or, with $(b,--supervise), restarts itself: a supervisor process respawns the dead \
          coordinator into $(b,--resume) under a restart budget, surviving workers rejoin the \
          new epoch and re-deliver in-flight verdicts; final statistics are bit-identical to \
          $(b,campaign run) with the same seed.")
    Term.(
      const serve $ core $ program $ cycles $ samples $ seed $ prune $ fault_model_arg $ listen
      $ port $ port_file $ chunk_size $ lease $ idle_timeout $ poison_threshold
      $ blacklist_threshold $ verify_frac $ max_inflight $ quorum $ suspect_threshold
      $ arb_patience $ journal $ resume $ verbose $ supervise $ restart_budget $ restart_window
      $ fleet $ chaos_profile_arg $ chaos_seed_arg $ chaos_budget_arg)

let work_cmd =
  let hostport =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT" ~doc:"The coordinator to work for.")
  in
  let worker_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Worker name in coordinator logs (default worker-PID; requires --workers 1).")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N" ~doc:"Fork $(docv) local worker processes.")
  in
  let max_reconnects =
    Arg.(
      value & opt int 8
      & info [ "max-reconnects" ] ~docv:"N"
          ~doc:
            "Consecutive connection failures tolerated (with capped exponential backoff) before \
             the worker gives up; the counter resets after every successful handshake.")
  in
  let recv_timeout =
    Arg.(
      value & opt float 30.
      & info [ "recv-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Read deadline on every frame expected from the coordinator: a coordinator silent \
             this long mid-reply counts as a lost session and the worker backs off and \
             reconnects instead of hanging.")
  in
  Cmd.v
    (Cmd.info "work" ~man:exit_doc
       ~doc:
         "stateless campaign worker: connects to a $(b,campaign serve) coordinator, derives the \
          campaign (engine, fault list, pruner) from the pinned identity it is sent, and streams \
          verdicts back until the campaign completes. Safe to kill at any time — at most the \
          current chunk is re-dispatched.")
    Term.(
      const work $ hostport $ worker_name $ workers $ batched $ engine_arg $ checkpoint_interval
      $ retries $ max_reconnects $ recv_timeout $ chaos_profile_arg $ chaos_seed_arg
      $ chaos_budget_arg)

let fsck_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL_DIR" ~doc:"The journal directory to scan.")
  in
  Cmd.v
    (Cmd.info "fsck" ~man:exit_doc
       ~doc:
         "offline read-only integrity check of a verdict journal: validates the header and every \
          record CRC-32, reports seal state, torn trailing bytes, per-kind verdict counts and \
          sample coverage without modifying anything. Exit 0 means a resume will accept the \
          journal; exit 17 lists what is damaged.")
    Term.(const fsck_dir $ dir)

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "campaign" ~man:exit_doc
       ~doc:
         "sampled fault-injection campaign with optional MATE pruning, crash-safe journaling, \
          supervised execution, MATE soundness auditing and distributed coordinator/worker \
          operation")
    [ run_cmd; serve_cmd; work_cmd; fsck_cmd ]

let () = exit (Cmd.eval' cmd)
