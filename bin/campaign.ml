(* campaign: sampled end-to-end fault-injection campaign on a built-in
   core/program, with and without MATE-based fault-space pruning — the
   HAFI use case of the paper, emulated in the simulator. *)

module Netlist = Pruning_netlist.Netlist
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
module Fi_campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Prng = Pruning_util.Prng
open Cmdliner

let make_system core program =
  match (core, program) with
  | "avr", "fib" ->
    let p = lazy (Avr_asm.assemble Programs.avr_fib) in
    Some
      ( (fun nl -> System.create_avr ?netlist:nl ~program:(Lazy.force p) "avr/fib"),
        fun nl -> System.create_avr_lanes ?netlist:nl ~program:(Lazy.force p) "avr/fib" )
  | "avr", "conv" ->
    let p = lazy (Avr_asm.assemble Programs.avr_conv) in
    Some
      ( (fun nl -> System.create_avr ?netlist:nl ~program:(Lazy.force p) "avr/conv"),
        fun nl -> System.create_avr_lanes ?netlist:nl ~program:(Lazy.force p) "avr/conv" )
  | "msp430", "fib" ->
    let p = lazy (Msp_asm.assemble Programs.msp_fib) in
    Some
      ( (fun nl -> System.create_msp ?netlist:nl ~program:(Lazy.force p) "msp/fib"),
        fun nl -> System.create_msp_lanes ?netlist:nl ~program:(Lazy.force p) "msp/fib" )
  | "msp430", "conv" ->
    let p = lazy (Msp_asm.assemble Programs.msp_conv) in
    Some
      ( (fun nl -> System.create_msp ?netlist:nl ~program:(Lazy.force p) "msp/conv"),
        fun nl -> System.create_msp_lanes ?netlist:nl ~program:(Lazy.force p) "msp/conv" )
  | _ -> None

let run core program cycles samples seed prune jobs checkpoint_interval batched =
  match make_system core program with
  | None ->
    prerr_endline "campaign: unknown core/program (avr|msp430 x fib|conv)";
    1
  | Some (make, make_lanes) ->
    let nl = (make None).System.netlist in
    let space = Fault_space.full nl ~cycles in
    Printf.printf "%s/%s: fault space = %d flops x %d cycles = %d faults; sampling %d\n%!"
      core program (Array.length space.Fault_space.flops) cycles (Fault_space.size space) samples;
    let checkpoint_interval = if checkpoint_interval > 0 then Some checkpoint_interval else None in
    let campaign =
      Fi_campaign.create ?checkpoint_interval
        ~make:(fun () -> make (Some nl))
        ~make_lanes:(fun () -> make_lanes (Some nl))
        ~total_cycles:cycles ()
    in
    Printf.printf "checkpoint interval: %d cycles; jobs: %d\n%!"
      (Fi_campaign.checkpoint_interval campaign) jobs;
    let skip =
      if not prune then None
      else begin
        Printf.printf "searching MATEs...\n%!";
        let report = Search.search_flops nl (Array.to_list nl.Netlist.flops) in
        let set = Mateset.of_report report in
        Printf.printf "replaying golden trace over %d MATEs...\n%!" (Mateset.size set);
        let sys = make (Some nl) in
        let trace = System.record sys ~cycles in
        let triggers = Replay.triggers set trace in
        let matrix = Replay.masked set triggers ~space () in
        let pruned = Replay.masked_count matrix in
        Printf.printf "MATEs prune %d of %d faults (%.2f%%) before injection\n%!" pruned
          (Fault_space.size space)
          (Pruning_util.Stats.percentage pruned (Fault_space.size space));
        Some
          (fun ~flop_id ~cycle ->
            match Fault_space.flop_index space flop_id with
            | Some fi -> matrix.(cycle).(fi)
            | None -> false)
      end
    in
    let rng = Prng.create seed in
    let start = Unix.gettimeofday () in
    let stats =
      if batched then begin
        if jobs > 1 then
          Printf.printf "(--batched runs the lane-parallel engine on one domain; ignoring --jobs)\n%!";
        Fi_campaign.run_sample_batched campaign ~space ~rng ~n:samples ?skip ()
      end
      else Fi_campaign.run_sample campaign ~space ~rng ~n:samples ?skip ~jobs ()
    in
    let elapsed = Unix.gettimeofday () -. start in
    Printf.printf "ran %d injections (%d skipped as pruned) in %.1fs (%.1f injections/s)\n"
      stats.Fi_campaign.injections stats.Fi_campaign.skipped elapsed
      (float_of_int stats.Fi_campaign.injections /. max 1e-9 elapsed);
    Printf.printf "verdicts: %d benign, %d latent, %d SDC\n" stats.Fi_campaign.benign
      stats.Fi_campaign.latent stats.Fi_campaign.sdc;
    0

let core = Arg.(value & opt string "avr" & info [ "core" ] ~doc:"avr or msp430.")
let program = Arg.(value & opt string "fib" & info [ "program" ] ~doc:"fib or conv.")
let cycles = Arg.(value & opt int 500 & info [ "cycles" ] ~doc:"Campaign horizon in cycles.")
let samples = Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Number of sampled faults.")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Sampling seed.")
let prune = Arg.(value & flag & info [ "prune" ] ~doc:"Prune the fault list with MATEs first.")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc:"Number of OCaml domains to inject from.")

let checkpoint_interval =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-interval" ]
        ~doc:"Golden-run checkpoint spacing in cycles (0 = auto: total/64).")

let batched =
  Arg.(
    value & flag
    & info [ "batched" ]
        ~doc:
          "Use the bit-parallel (PPSFP) engine: up to 62 faults simulated at once in the bit-lanes \
           of one machine word. Verdicts are identical to the scalar engine.")

let cmd =
  Cmd.v
    (Cmd.info "campaign" ~doc:"sampled fault-injection campaign with optional MATE pruning")
    Term.(
      const run $ core $ program $ cycles $ samples $ seed $ prune $ jobs $ checkpoint_interval
      $ batched)

let () = exit (Cmd.eval' cmd)
