(* cpusim: run one of the built-in programs on one of the built-in cores,
   optionally dumping a wire-level VCD trace — the "netlist simulation"
   step of the paper's flow. *)

module Netlist = Pruning_netlist.Netlist
module Mono = Pruning_util.Mono
module Sim = Pruning_sim.Sim
module Vcd = Pruning_vcd.Vcd
module System = Pruning_cpu.System
module Avr_asm = Pruning_cpu.Avr_asm
module Msp_asm = Pruning_cpu.Msp_asm
module Programs = Pruning_cpu.Programs
open Cmdliner

let systems =
  [
    (("avr", "fib"), fun () -> System.create_avr ~program:(Avr_asm.assemble Programs.avr_fib) "avr/fib");
    (("avr", "conv"), fun () -> System.create_avr ~program:(Avr_asm.assemble Programs.avr_conv) "avr/conv");
    (("avr", "sort"), fun () -> System.create_avr ~program:(Avr_asm.assemble Programs.avr_sort) "avr/sort");
    (("msp430", "fib"), fun () -> System.create_msp ~program:(Msp_asm.assemble Programs.msp_fib) "msp/fib");
    (("msp430", "conv"), fun () -> System.create_msp ~program:(Msp_asm.assemble Programs.msp_conv) "msp/conv");
  ]

let run core program cycles vcd_out ram_dump =
  match List.assoc_opt (core, program) systems with
  | None ->
    prerr_endline "cpusim: unknown core/program (avr x fib|conv|sort, msp430 x fib|conv)";
    1
  | Some make ->
    let sys = make () in
    let nl = sys.System.netlist in
    Printf.printf "%s: %d gates, %d flops, %d wires; running %d cycles\n%!" sys.System.name
      (Netlist.n_gates nl) (Netlist.n_flops nl) (Netlist.n_wires nl) cycles;
    let start = Mono.now () in
    (match vcd_out with
    | Some path ->
      let trace = System.record sys ~cycles in
      Vcd.write_file nl trace path;
      Printf.printf "VCD written to %s (%d cycles)\n" path cycles
    | None -> System.run sys ~cycles);
    let elapsed = Mono.now () -. start in
    Printf.printf "simulated in %.2fs (%.0f cycles/s)\n" elapsed
      (float_of_int cycles /. elapsed);
    if ram_dump > 0 then begin
      Printf.printf "memory[0..%d]:" (ram_dump - 1);
      Array.iteri
        (fun i v -> if i < ram_dump then Printf.printf " %02x" v)
        sys.System.ram;
      print_newline ()
    end;
    0

let core = Arg.(value & opt string "avr" & info [ "core" ] ~doc:"avr or msp430.")
let program = Arg.(value & opt string "fib" & info [ "program" ] ~doc:"fib, conv or sort (sort: AVR only).")
let cycles = Arg.(value & opt int 8500 & info [ "cycles" ] ~doc:"Clock cycles to simulate.")
let vcd = Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD trace.")
let ram_dump = Arg.(value & opt int 48 & info [ "dump" ] ~doc:"Dump the first N memory cells (0 = none).")

let cmd =
  Cmd.v
    (Cmd.info "cpusim" ~doc:"cycle-accurate netlist simulation of the built-in cores")
    Term.(const run $ core $ program $ cycles $ vcd $ ram_dump)

let () = exit (Cmd.eval' cmd)
