(* HAFI campaign with online fault-space pruning (Section 1.1/6.1 of the
   paper): run a sampled end-to-end fault-injection campaign on the AVR
   core twice — once plain, once with MATE pruning deciding per cycle
   which faults need no experiment — and compare experiment counts and
   verdicts.

   Every fault a MATE prunes is counted benign without running; the
   verdict distribution of the pruned campaign must therefore match the
   plain campaign (pruning is sound), with fewer injections executed.

   Run with: dune exec examples/hafi_campaign.exe *)

module Netlist = Pruning_netlist.Netlist
module Campaign = Pruning_fi.Campaign
module Fault_space = Pruning_fi.Fault_space
module Search = Pruning_mate.Search
module Mateset = Pruning_mate.Mateset
module Replay = Pruning_mate.Replay
module Prng = Pruning_util.Prng
open Pruning_cpu

let () =
  let cycles = 400 in
  let samples = 400 in
  let nl = System.avr_netlist () in
  let program = Avr_asm.assemble Programs.avr_fib in
  let make () = System.create_avr ~netlist:nl ~program "avr/fib" in
  let space = Fault_space.full nl ~cycles in
  Printf.printf "fault space: %d flops x %d cycles = %d faults; sampling %d\n%!"
    (Array.length space.Fault_space.flops) cycles (Fault_space.size space) samples;

  let campaign = Campaign.create ~make ~total_cycles:cycles () in

  (* Plain campaign. *)
  let t0 = Unix.gettimeofday () in
  let plain = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:samples () in
  let plain_time = Unix.gettimeofday () -. t0 in
  Printf.printf "plain:  %d injections in %5.1fs -> %d benign, %d latent, %d SDC\n%!"
    plain.Campaign.injections plain_time plain.Campaign.benign plain.Campaign.latent
    plain.Campaign.sdc;

  (* MATE-pruned campaign: search, replay the golden trace, skip pruned. *)
  let params = { Search.default_params with Search.max_candidates = 1000; max_situations = 8 } in
  let trace = System.record (make ()) ~cycles in
  let report = Search.search_flops ~params ~traces:[ trace ] nl (Array.to_list nl.Netlist.flops) in
  let set = Mateset.of_report report in
  let triggers = Replay.triggers set trace in
  let matrix = Replay.masked set triggers ~space () in
  Printf.printf "MATEs prune %d of %d faults up front (%.1f%%)\n%!"
    (Replay.masked_count matrix) (Fault_space.size space)
    (Pruning_util.Stats.percentage (Replay.masked_count matrix) (Fault_space.size space));
  (* A flop outside the fault space cannot be pruned — but it is a
     stale-fault-list symptom worth surfacing, not a silent "inject". *)
  let unknown_flops = ref 0 in
  let skip ~flop_id ~cycle =
    match Fault_space.flop_index space flop_id with
    | Some fi -> matrix.(cycle).(fi)
    | None ->
      incr unknown_flops;
      false
  in
  let t1 = Unix.gettimeofday () in
  let pruned = Campaign.run_sample campaign ~space ~rng:(Prng.create 7) ~n:samples ~skip () in
  if !unknown_flops > 0 then
    Printf.printf
      "warning: %d prune lookups named flops outside the fault space (injected, not pruned)\n%!"
      !unknown_flops;
  let pruned_time = Unix.gettimeofday () -. t1 in
  Printf.printf "pruned: %d injections (%d skipped) in %5.1fs -> %d benign, %d latent, %d SDC\n"
    pruned.Campaign.injections pruned.Campaign.skipped pruned_time pruned.Campaign.benign
    pruned.Campaign.latent pruned.Campaign.sdc;

  (* Soundness check: identical sampling seed, so the verdict split must
     be identical — pruning may only convert executed-benign faults into
     skipped ones. *)
  assert (pruned.Campaign.latent = plain.Campaign.latent);
  assert (pruned.Campaign.sdc = plain.Campaign.sdc);
  assert (pruned.Campaign.benign + pruned.Campaign.skipped = plain.Campaign.benign);
  Printf.printf
    "verdicts identical; %d experiments avoided (%.1f%% of the campaign), %.1fx speedup\n"
    pruned.Campaign.skipped
    (100.
    *. float_of_int pruned.Campaign.skipped
    /. float_of_int (max 1 plain.Campaign.injections))
    (plain_time /. pruned_time)
